"""The daemon/pool health model: heartbeat samples → health states.

A health *sample* is the dict :meth:`PortusDaemon.health_snapshot`
produces (and heartbeat acks carry): liveness, pool utilization,
inflight/lease counts, and the monotonic fault counters from the shared
:class:`~repro.obs.metrics.MetricsRegistry`.  :func:`classify` folds one
sample — plus the previous sample, for counter deltas — into one of five
states:

* ``healthy`` — serving, no fault signal;
* ``degraded`` — serving, but faults are accumulating (error/abort/slow
  bursts since the last sample, dropped replies, or the pool is nearly
  full) — the operator steers clients onto the DRAM failover path;
* ``wedged`` — an in-flight request has held a model's CAS guard longer
  than any healthy pull could need: the datapath is stuck, only a
  restart recovers it;
* ``corrupt`` — the structural verifier found index damage (this state
  is overlaid by :func:`overlay_fsck`; a heartbeat alone cannot see it);
* ``down`` — the daemon process is gone or its pool is closed.

Classification is pure arithmetic on the sample dicts — deterministic,
simulation-clock-free, and identical whether it runs inside the
operator, in ``portusctl health``, or in a test.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.units import msecs

H_HEALTHY = "healthy"
H_DEGRADED = "degraded"
H_WEDGED = "wedged"
H_CORRUPT = "corrupt"
H_DOWN = "down"

#: All states, ordered from best to worst (index = severity).
STATES = (H_HEALTHY, H_DEGRADED, H_WEDGED, H_CORRUPT, H_DOWN)

SEVERITY = {state: index for index, state in enumerate(STATES)}

#: Counter keys whose *delta* between two samples counts as fault burst
#: evidence for the degraded state.
FAULT_COUNTERS = ("errors", "checkpoints_aborted", "restores_aborted",
                  "dropped_replies", "slow_requests", "reaped_sessions")


class HealthThresholds:
    """Knobs separating the states (defaults sized for the chaos rigs).

    ``wedge_ns`` must sit well above the longest *healthy* pull the
    deployment serves — the lease-reaper rule at the daemon applies
    here too: a live long pull is proof of liveness, not of a wedge.
    """

    def __init__(self, wedge_ns: int = msecs(50),
                 pool_high_water: float = 0.92,
                 fault_burst: int = 3) -> None:
        self.wedge_ns = wedge_ns
        self.pool_high_water = pool_high_water
        self.fault_burst = fault_burst


DEFAULT_THRESHOLDS = HealthThresholds()


def classify(sample: Optional[Dict],
             previous: Optional[Dict] = None,
             thresholds: Optional[HealthThresholds] = None
             ) -> Tuple[str, List[str]]:
    """One sample (plus the previous one, for deltas) → (state, reasons).

    Reasons are sorted, human-readable strings; they key the operator's
    decision log, so their wording is part of the determinism contract.
    """
    thresholds = thresholds or DEFAULT_THRESHOLDS
    if sample is None:
        return H_DOWN, ["no health sample (daemon unreachable)"]
    if not sample.get("up", False):
        return H_DOWN, ["daemon process is not serving"]
    if sample.get("pool", {}).get("closed", False):
        return H_DOWN, ["pool is closed under a live daemon"]

    reasons: List[str] = []
    state = H_HEALTHY

    oldest = sample.get("oldest_inflight_age_ns", 0)
    if oldest > thresholds.wedge_ns:
        state = H_WEDGED
        reasons.append(f"inflight request stuck for {oldest} ns "
                       f"(wedge threshold {thresholds.wedge_ns} ns)")

    utilization = sample.get("pool", {}).get("utilization", 0.0)
    if utilization > thresholds.pool_high_water:
        if state == H_HEALTHY:
            state = H_DEGRADED
        reasons.append(f"pool {utilization:.1%} full "
                       f"(high water {thresholds.pool_high_water:.0%})")

    if previous is not None:
        burst = _fault_delta(sample, previous)
        if burst >= thresholds.fault_burst:
            if state == H_HEALTHY:
                state = H_DEGRADED
            reasons.append(f"fault burst: {burst} faults since last "
                           f"sample (threshold {thresholds.fault_burst})")

    return state, sorted(reasons)


def _fault_delta(sample: Dict, previous: Dict) -> int:
    """Faults accumulated between two samples (counters are monotonic
    across daemon restarts because the obs registry is shared)."""
    current = sample.get("counters", {})
    older = previous.get("counters", {})
    return sum(max(0, current.get(key, 0) - older.get(key, 0))
               for key in FAULT_COUNTERS)


def overlay_fsck(state: str, reasons: List[str],
                 report) -> Tuple[str, List[str]]:
    """Fold a (read-only) fsck report into a heartbeat-derived state.

    Structural corruption outranks degraded/wedged — a daemon that is
    up but serving from a damaged index must be repaired before it is
    trusted — but never outranks ``down`` (a dead daemon has no open
    pool to verify).
    """
    if report is None or report.clean or state == H_DOWN:
        return state, reasons
    kinds = report.kinds()
    detail = ", ".join(f"{kind}x{kinds[kind]}" for kind in sorted(kinds))
    reasons = sorted(reasons + [f"fsck findings: {detail}"])
    if SEVERITY[state] < SEVERITY[H_CORRUPT]:
        state = H_CORRUPT
    return state, reasons


def worst(states) -> str:
    """The most severe of *states* (``healthy`` for an empty list)."""
    result = H_HEALTHY
    for state in states:
        if SEVERITY[state] > SEVERITY[result]:
            result = state
    return result


def format_health(state: str, reasons: List[str], sample: Dict) -> str:
    """The ``portusctl health`` text rendering of one classification."""
    pool = sample.get("pool", {})
    counters = sample.get("counters", {})
    lines = [f"state: {state}"]
    for reason in reasons:
        lines.append(f"  - {reason}")
    lines.append(f"daemon: up={sample.get('up')} port={sample.get('port')} "
                 f"models={sample.get('models')} "
                 f"attached={sample.get('attached')} "
                 f"inflight={sample.get('inflight')}")
    lines.append(f"pool: {pool.get('utilization', 0.0):.1%} of "
                 f"{pool.get('capacity_bytes', 0)} bytes"
                 + (" (closed)" if pool.get("closed") else ""))
    lines.append("counters: " + " ".join(
        f"{key}={counters[key]}" for key in sorted(counters)))
    return "\n".join(lines)

"""The auto-remediation operator: detect → diagnose → remediate → verify.

A :class:`RemediationOperator` is a simulation process (like the
daemon's lease reaper) that wakes every ``interval_ns``, pulls the
daemon's health block (the same dict heartbeat acks carry), classifies
it with :mod:`repro.ops.health`, overlays a read-only fsck when the pool
is quiescent, and applies the remediation matrix:

========  ============================================  ================
state     remediation                                   verification
========  ============================================  ================
down      force clients onto the DRAM failover path,    successor
          restart the daemon on its old port            reports ``up``
wedged    same as down — only a restart releases a      successor
          stuck CAS guard                               reports ``up``
corrupt   ``pmem.fsck.repair`` (only while no request   repair re-walk
          is in flight — never demote a live ACTIVE     verifies clean
          slot mid-pull)
degraded  steer clients onto the failover path; if      health clears
          degradation persists, escalate to a restart   within
                                                        ``escalate_after``
healthy   drain held clients back to Portus             next probe takes
                                                        the portus path
========  ============================================  ================

Guard rails, because an operator that flaps is worse than none:

* **one action per tick** — remediations are serialized, never stacked;
* **per-action cooldown** — the same action is not repeated within
  ``cooldown_ns`` even if the state still looks bad (recovery takes
  time to show up in the counters);
* **circuit breaker** — more than ``breaker_limit`` recovery actions
  inside ``breaker_window_ns`` means the remediation itself is flapping
  (crash loop, repair that does not stick); the breaker opens and the
  operator sits out ``breaker_cooldown_ns`` before trying again;
* **escalation counter** — ``escalations`` counts remediations whose
  verification failed; it never stops the loop (the chaos contract is
  zero manual intervention) but it is the operator's cry for help.

Every decision appends one line to :attr:`decisions` — pure function of
sampled state and the sim clock, so two runs of the same seed produce
bit-identical decision logs (the chaos determinism contract).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.ops.health import (H_CORRUPT, H_DEGRADED, H_DOWN, H_HEALTHY,
                              H_WEDGED, SEVERITY, HealthThresholds,
                              classify, overlay_fsck)
from repro.pmem.fsck import fsck, repair
from repro.sim import Environment
from repro.units import msecs

#: Remediation actions (stable strings: they key metrics, the decision
#: log, and test assertions).
A_RESTART = "restart-daemon"
A_REPAIR = "fsck-repair"
A_DEGRADE = "force-degrade"
A_DRAIN = "drain-back"
A_NONE = "none"
A_COOLDOWN = "cooldown"
A_BREAKER = "breaker-open"

#: Actions that count toward the cooldown/breaker budget (drain-back is
#: benign — it only releases a hold — and is never rate limited).
RECOVERY_ACTIONS = (A_RESTART, A_REPAIR, A_DEGRADE)


class RemediationOperator:
    """The self-healing loop for one :class:`PaperCluster` deployment."""

    def __init__(self, env: Environment, cluster,
                 interval_ns: int = msecs(1),
                 thresholds: Optional[HealthThresholds] = None,
                 cooldown_ns: Optional[int] = None,
                 breaker_window_ns: Optional[int] = None,
                 breaker_limit: int = 4,
                 breaker_cooldown_ns: Optional[int] = None,
                 escalate_after: int = 3,
                 controller=None) -> None:
        self.env = env
        self.cluster = cluster
        self.obs = cluster.obs
        self.interval_ns = interval_ns
        self.thresholds = thresholds or HealthThresholds()
        self.cooldown_ns = (cooldown_ns if cooldown_ns is not None
                            else 3 * interval_ns)
        self.breaker_window_ns = (breaker_window_ns
                                  if breaker_window_ns is not None
                                  else 20 * interval_ns)
        self.breaker_limit = breaker_limit
        self.breaker_cooldown_ns = (breaker_cooldown_ns
                                    if breaker_cooldown_ns is not None
                                    else 40 * interval_ns)
        self.escalate_after = escalate_after
        #: Optional :class:`~repro.ops.policy.AdaptiveIntervalController`
        #: fed one observe_failure() per daemon death/wedge remediated.
        self.controller = controller
        if controller is not None:
            controller.observe_start(env.now)
        #: FailoverCheckpointers this operator steers (force/drain),
        #: flat across every shard.
        self.failovers: List = []
        #: shard index -> the failovers whose sessions live there
        #: (restart/degrade remediations only park those clients).
        self._failovers_by: Dict[int, List] = {}
        #: The deterministic decision log: one line per tick.
        self.decisions: List[str] = []
        self.ticks = 0
        self.restarts = 0
        self.repairs = 0
        self.degrades = 0
        self.drains = 0
        self.escalations = 0
        self.breaker_trips = 0
        self.last_state = H_HEALTHY
        self.last_reasons: List[str] = []
        self.last_fsck_clean = True
        #: shard index -> classified state / fsck verdict from the last
        #: tick (``last_state``/``last_fsck_clean`` are the fleet
        #: rollup: worst state, AND over clean bits).
        self.shard_states: Dict[int, str] = {}
        self.shard_fsck_clean: Dict[int, bool] = {}
        self.stopped = True
        self._previous_samples: Dict[int, Optional[Dict]] = {}
        #: cooldown ledger keyed (action, shard): restarting server1
        #: must not block a needed restart of server2.
        self._last_action_ns: Dict = {}
        self._recent_action_ns: List[int] = []
        self._breaker_open_until: Optional[int] = None
        self._degraded_streaks: Dict[int, int] = {}
        self._unverified_streak = 0
        self._process = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "RemediationOperator":
        if not self.stopped:
            return self
        self.stopped = False
        self._process = self.env.process(self._loop())
        return self

    def stop(self) -> None:
        self.stopped = True

    def register_failover(self, checkpointer, shard: int = 0) -> None:
        """Give the operator the steering wheel for one client.
        *shard* is the storage shard the client's model lives on."""
        self.failovers.append(checkpointer)
        self._failovers_by.setdefault(shard, []).append(checkpointer)

    def _loop(self) -> Generator:
        from repro.errors import ReproError

        while not self.stopped:
            yield self.env.timeout(self.interval_ns)
            if self.stopped:
                return
            try:
                self.tick()
            except ReproError as exc:
                # A remediation can itself die mid-flight (e.g. power
                # loss at a metadata boundary during the restart's pool
                # recovery).  The operator must outlive its own failed
                # medicine: log, count, and try again next tick.
                self.decisions.append(
                    f"{self.env.now}ns tick-failed "
                    f"{type(exc).__name__}: {exc}")
                self.obs.metrics.counter("ops.tick_errors").inc()

    # -- detect → diagnose --------------------------------------------------------

    def tick(self) -> str:
        """One detect → diagnose → remediate → verify round.  Returns
        the action taken (one of the ``A_*`` constants).

        Every storage shard is sampled and classified each tick; when
        several are unhealthy at once, the **worst incident wins**
        (ties broken by shard index) and gets this tick's one action —
        the rest wait their turn.  Per-(action, shard) cooldowns keep
        a busy shard from starving its neighbours.
        """
        self.ticks += 1
        self.obs.metrics.counter("ops.ticks").inc()
        incidents = []
        for shard in self.cluster.shards:
            index = shard.index
            sample = shard.daemon.health_snapshot()
            state, reasons = classify(
                sample, self._previous_samples.get(index),
                self.thresholds)
            pool = shard.pool
            if (state != H_DOWN and not pool.closed
                    and sample.get("inflight", 0) == 0):
                # A quiescent pool gets a structural verification pass.
                # Never while a pull is in flight: its ACTIVE slot is
                # legitimate work, not damage to demote.
                report = fsck(pool, obs=self.obs)
                self.shard_fsck_clean[index] = report.clean
                state, reasons = overlay_fsck(state, reasons, report)
            self._previous_samples[index] = sample
            self.shard_states[index] = state
            incidents.append((index, state, reasons))
        self.last_fsck_clean = all(self.shard_fsck_clean.values()) \
            if self.shard_fsck_clean else self.last_fsck_clean
        index, state, reasons = min(
            incidents, key=lambda item: (-SEVERITY[item[1]], item[0]))
        self.last_state = state
        self.last_reasons = reasons
        action = self._remediate(state, index)
        where = ""
        if len(self.cluster.shards) > 1:
            where = f" shard={self.cluster.shards[index].name}"
        self.decisions.append(
            f"{self.env.now}ns state={state}{where} action={action}"
            + (f" reasons=[{'; '.join(reasons)}]" if reasons else ""))
        return action

    @property
    def converged(self) -> bool:
        """True once the deployment verifies healthy: every shard's
        last classified state healthy, every quiescent fsck clean, no
        client held."""
        return (self.last_state == H_HEALTHY
                and all(state == H_HEALTHY
                        for state in self.shard_states.values())
                and self.last_fsck_clean
                and not any(fc.operator_hold for fc in self.failovers))

    # -- remediate → verify -------------------------------------------------------

    def _remediate(self, state: str, shard: int = 0) -> str:
        now = self.env.now
        if state == H_HEALTHY:
            self._degraded_streaks.clear()
            self._unverified_streak = 0
            if any(fc.operator_hold for fc in self.failovers) \
                    and self.last_fsck_clean:
                for fc in self.failovers:
                    fc.drain_back()
                self.drains += 1
                self.obs.metrics.counter("ops.remediations.drain").inc()
                return A_DRAIN
            return A_NONE

        if self._breaker_open_until is not None:
            if now < self._breaker_open_until:
                return A_BREAKER
            self._breaker_open_until = None
            self._recent_action_ns = []

        if state in (H_DOWN, H_WEDGED):
            self._degraded_streaks.pop(shard, None)
            return self._gated(A_RESTART, now,
                               lambda: self._act_restart(state, shard),
                               shard)
        if state == H_CORRUPT:
            self._degraded_streaks.pop(shard, None)
            return self._gated(A_REPAIR, now,
                               lambda: self._act_repair(shard), shard)

        # Degraded: steer clients local first; a daemon that stays
        # degraded despite that gets the bigger hammer.
        streak = self._degraded_streaks.get(shard, 0) + 1
        self._degraded_streaks[shard] = streak
        if streak > self.escalate_after:
            return self._gated(A_RESTART, now,
                               lambda: self._act_restart(state, shard),
                               shard)
        if any(not fc.operator_hold
               for fc in self._shard_failovers(shard)):
            return self._gated(A_DEGRADE, now,
                               lambda: self._act_degrade(shard), shard)
        return A_NONE

    def _shard_failovers(self, shard: int) -> List:
        """The failovers a shard-scoped remediation steers.  Clients
        registered without a shard (legacy callers) ride shard 0."""
        return self._failovers_by.get(shard, [])

    def _gated(self, action: str, now: int, act, shard: int = 0) -> str:
        """Cooldown + circuit-breaker gate around one recovery action.
        Cooldowns are per (action, shard); the breaker is fleet-wide —
        a crash loop anywhere means the medicine itself is suspect."""
        last = self._last_action_ns.get((action, shard))
        if last is not None and now - last < self.cooldown_ns:
            return A_COOLDOWN
        window_start = now - self.breaker_window_ns
        self._recent_action_ns = [t for t in self._recent_action_ns
                                  if t > window_start]
        if len(self._recent_action_ns) >= self.breaker_limit:
            self._breaker_open_until = now + self.breaker_cooldown_ns
            self.breaker_trips += 1
            self.obs.metrics.counter("ops.breaker_open").inc()
            return A_BREAKER
        self._last_action_ns[(action, shard)] = now
        self._recent_action_ns.append(now)
        self.obs.metrics.counter(f"ops.remediations.{action}").inc()
        verified = act()
        if verified:
            self._unverified_streak = 0
        else:
            self._unverified_streak += 1
            if self._unverified_streak >= self.escalate_after:
                self.escalations += 1
                self.obs.metrics.counter("ops.escalations").inc()
                self._unverified_streak = 0
        return action

    def _act_restart(self, state: str, shard: int = 0) -> bool:
        """Park the shard's clients on the DRAM path, restart its
        daemon on the old port (pool re-open + index recovery), verify
        the successor is serving."""
        for fc in self._shard_failovers(shard):
            fc.force_degrade(reason=f"daemon {state}")
        self.cluster.restart_daemon(shard=shard)
        self.restarts += 1
        if self.controller is not None:
            self.controller.observe_failure(self.env.now)
        sample = self.cluster.shards[shard].daemon.health_snapshot()
        return bool(sample.get("up"))

    def _act_repair(self, shard: int = 0) -> bool:
        """Structural repair; verification is repair's own re-walk."""
        result = repair(self.cluster.shards[shard].pool, obs=self.obs)
        self.repairs += 1
        self.shard_fsck_clean[shard] = result.clean
        self.last_fsck_clean = all(self.shard_fsck_clean.values())
        return result.clean

    def _act_degrade(self, shard: int = 0) -> bool:
        """Hold the shard's clients on the DRAM path until health
        clears."""
        held = self._shard_failovers(shard)
        for fc in held:
            fc.force_degrade(reason="daemon degraded")
        self.degrades += 1
        return all(fc.operator_hold for fc in held)

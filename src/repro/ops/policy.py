"""Adaptive checkpoint-interval policy: spend checkpoint overhead where
failures actually are.

The CheckFreq-style baseline (:mod:`repro.baselines.checkfreq`) picks the
highest frequency whose overhead fits a budget — it never looks at how
often the deployment *fails*, so it checkpoints a stable cluster exactly
as hard as a flaky one.  The classic result (Young 1974, refined by Daly)
says the interval that minimizes expected lost time is

    T_opt = sqrt(2 * C * MTBF)

where ``C`` is the cost of one checkpoint and ``MTBF`` the mean time
between failures: expected overhead per unit time is roughly

    C / T            (time spent checkpointing)
  + T / (2 * MTBF)   (work lost per failure, half an interval on average)

and the sum is minimized where the two terms are equal.

:class:`AdaptiveIntervalController` estimates both inputs online — MTBF
from the failures the remediation operator reports (with a Bayesian-style
prior so the estimate is sane before the first failure), checkpoint cost
as an EWMA of measured costs — and clamps the Young interval to a
configured band.  Everything is integer-ns arithmetic on observed
events, so two runs that see the same failures pick the same intervals.
"""

from __future__ import annotations

import math

from repro.units import msecs, secs


def expected_overhead(interval_ns: int, cost_ns: float,
                      mtbf_ns: float) -> float:
    """Expected fraction of wall time lost to checkpointing + redone
    work at checkpoint interval *interval_ns* (first-order Young model).
    """
    if interval_ns <= 0:
        raise ValueError(f"interval must be positive, got {interval_ns}")
    if mtbf_ns <= 0:
        raise ValueError(f"MTBF must be positive, got {mtbf_ns}")
    return cost_ns / interval_ns + interval_ns / (2.0 * mtbf_ns)


def young_interval_ns(cost_ns: float, mtbf_ns: float) -> int:
    """The unclamped Young optimum ``sqrt(2 * C * MTBF)`` in whole ns."""
    return max(1, int(math.sqrt(2.0 * cost_ns * mtbf_ns)))


class AdaptiveIntervalController:
    """Online Young-interval tuner fed by the operator and the client.

    * :meth:`observe_failure` — the operator calls this on every daemon
      death/wedge it remediates; together with elapsed time this yields
      the MTBF estimate.
    * :meth:`observe_checkpoint_cost` — the training loop reports each
      checkpoint's measured stall; an EWMA tracks drift (a model that
      grows, a congested fabric).
    * :meth:`interval_ns` / :meth:`frequency` — the current
      recommendation.

    The MTBF estimate is ``(elapsed + prior_mtbf) / (failures + 1)``:
    one phantom failure at the prior MTBF, so a fresh controller starts
    from the prior and converges to the observed rate as real failures
    accumulate — no divide-by-zero, no wild swing on the first failure.
    """

    def __init__(self, min_interval_ns: int = msecs(1),
                 max_interval_ns: int = secs(120),
                 prior_mtbf_ns: int = secs(30),
                 prior_cost_ns: int = msecs(5),
                 cost_alpha: float = 0.25) -> None:
        if min_interval_ns < 1 or max_interval_ns < min_interval_ns:
            raise ValueError(
                f"need 1 <= min <= max interval, got "
                f"[{min_interval_ns}, {max_interval_ns}]")
        if not 0 < cost_alpha <= 1:
            raise ValueError(f"cost_alpha must be in (0, 1], "
                             f"got {cost_alpha}")
        self.min_interval_ns = min_interval_ns
        self.max_interval_ns = max_interval_ns
        self.prior_mtbf_ns = prior_mtbf_ns
        self.cost_alpha = cost_alpha
        self.cost_ns = float(prior_cost_ns)
        self.failures = 0
        self.costs_observed = 0
        self._origin_ns = 0

    # -- observations -------------------------------------------------------------

    def observe_start(self, now: int) -> None:
        """Anchor the elapsed-time clock (call once, at deployment)."""
        self._origin_ns = now

    def observe_failure(self, now: int) -> None:
        """One failure the operator had to remediate (restart/wedge)."""
        self.failures += 1

    def observe_checkpoint_cost(self, cost_ns: int) -> None:
        """One measured checkpoint stall (EWMA with ``cost_alpha``)."""
        if cost_ns < 0:
            raise ValueError(f"negative checkpoint cost: {cost_ns}")
        if self.costs_observed == 0:
            self.cost_ns = float(cost_ns)
        else:
            self.cost_ns += self.cost_alpha * (cost_ns - self.cost_ns)
        self.costs_observed += 1

    # -- estimates ----------------------------------------------------------------

    def mtbf_ns(self, now: int) -> float:
        """Current mean-time-between-failures estimate (prior-smoothed)."""
        elapsed = max(0, now - self._origin_ns)
        return (elapsed + self.prior_mtbf_ns) / (self.failures + 1)

    def interval_ns(self, now: int) -> int:
        """The clamped Young-optimal checkpoint interval right now."""
        young = young_interval_ns(self.cost_ns, self.mtbf_ns(now))
        return max(self.min_interval_ns, min(self.max_interval_ns, young))

    def frequency(self, iteration_ns: int, now: int) -> int:
        """Checkpoint every N iterations (>= 1) of *iteration_ns* each."""
        if iteration_ns <= 0:
            raise ValueError(
                f"iteration time must be positive, got {iteration_ns}")
        return max(1, round(self.interval_ns(now) / iteration_ns))

    def overhead(self, now: int) -> float:
        """Expected overhead at the current recommendation."""
        return expected_overhead(self.interval_ns(now), self.cost_ns,
                                 self.mtbf_ns(now))

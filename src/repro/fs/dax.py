"""ext4-DAX over an fsdax PMem namespace.

DAX writes skip the page cache and block layer entirely: the kernel
memcpys user data straight onto persistent media with non-temporal
stores.  That CPU copy is the cost — about 7 GB/s in the paper's Table I
("Server DAX write", 12.8 % of a checkpoint) — modeled as a dedicated
per-filesystem copy channel shared by concurrent writers, in series with
the DIMMs' own write bandwidth.  ``fsync`` is nearly free (an sfence plus
a journal touch), which is exactly why stacking BeeGFS on fsdax is
attractive in the first place.
"""

from __future__ import annotations

from typing import Generator

from repro.fs.vfs import FileHandle, Filesystem
from repro.hw.content import Content
from repro.hw.devices import PmemDimm
from repro.sim import Environment, SharedChannel, Transfer
from repro.units import gbytes, usecs

#: Kernel nt-store copy rate into PMem (the Table I "DAX write" anchor:
#: 12.8 % of a BERT checkpoint; see repro.harness.calibration).
DAX_COPY_BPS = gbytes(5.64)
#: DAX reads are plain loads from PMem through the CPU caches — faster
#: than nt-store writes.
DAX_READ_BPS = gbytes(8.0)


class DaxFilesystem(Filesystem):
    """ext4 mounted with -o dax on an fsdax namespace."""

    def __init__(self, env: Environment, device: PmemDimm,
                 name: str = "ext4-dax",
                 copy_bw_bps: float = DAX_COPY_BPS,
                 read_bw_bps: float = DAX_READ_BPS) -> None:
        super().__init__(env, name)
        self.device = device
        self._copy_channel = SharedChannel(env, copy_bw_bps,
                                           f"{name}.dax-copy")
        self._read_channel = SharedChannel(env, read_bw_bps,
                                           f"{name}.dax-read")

    def _write_data(self, handle: FileHandle, offset: int,
                    content: Content) -> Generator:
        if content.size == 0:
            return
        start = self.env.now
        transfer = Transfer(
            self.env, [self._copy_channel, self.device.write_channel],
            content.size, label=f"{self.name}:dax-write")
        yield transfer
        self.ledger.add("dax_write", self.env.now - start)

    def _read_data(self, handle: FileHandle, offset: int,
                   length: int, direct: bool = False) -> Generator:
        if length == 0:
            return
        start = self.env.now
        transfer = Transfer(
            self.env, [self.device.read_channel, self._read_channel],
            length, label=f"{self.name}:dax-read")
        yield transfer
        self.ledger.add("dax_read", self.env.now - start)

    def _fsync_file(self, handle: FileHandle) -> Generator:
        # sfence + journal inode update: sub-microsecond, charge a token.
        yield self.env.timeout(usecs(0.5))
        self.ledger.add("dax_write", usecs(0.5))

"""Stripe mapping: file offsets -> (target index, chunk-local ranges).

BeeGFS spreads each file across storage targets in fixed-size chunks
(512 KiB by default).  The paper's server exposes a single PMem target,
but the mapping is implemented generally and the multi-target behaviour is
unit-tested, because stripe width is one of the knobs the ablation
benches turn.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.units import kib

DEFAULT_CHUNK_BYTES = kib(512)


class StripePattern:
    """RAID-0 style striping of a byte stream over *targets* targets."""

    def __init__(self, targets: int = 1,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> None:
        if targets < 1:
            raise ValueError(f"need at least one target, got {targets}")
        if chunk_bytes < 1:
            raise ValueError(f"chunk size must be positive, got {chunk_bytes}")
        self.targets = targets
        self.chunk_bytes = chunk_bytes

    def target_of(self, offset: int) -> int:
        """Which target stores the byte at *offset*."""
        return (offset // self.chunk_bytes) % self.targets

    def split(self, offset: int,
              length: int) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(target, file_offset, length)`` pieces covering a range.

        Pieces are yielded in file order and never cross a chunk boundary.
        """
        cursor = offset
        end = offset + length
        while cursor < end:
            chunk_end = (cursor // self.chunk_bytes + 1) * self.chunk_bytes
            piece_end = min(end, chunk_end)
            yield (self.target_of(cursor), cursor, piece_end - cursor)
            cursor = piece_end

    def per_target_bytes(self, offset: int, length: int) -> List[int]:
        """Total bytes each target receives for a range."""
        totals = [0] * self.targets
        for target, _off, piece in self.split(offset, length):
            totals[target] += piece
        return totals

    def target_local_offset(self, file_offset: int) -> int:
        """Offset inside the owning target's chunk file.

        BeeGFS stores a file's chunks back-to-back in each target's chunk
        file: global chunk *k* lands at local chunk ``k // targets``.
        """
        chunk_index = file_offset // self.chunk_bytes
        local_chunk = chunk_index // self.targets
        return local_chunk * self.chunk_bytes + file_offset % self.chunk_bytes

"""BeeGFS-like distributed filesystem (the paper's shared-FS baseline).

A :class:`BeegfsServer` daemon runs on the storage node, serving metadata
and chunk I/O over two-sided RPC-over-RDMA, with an ext4-DAX filesystem
on the fsdax PMem namespace as its storage target — exactly the
"BeeGFS-PMEM" stack of the paper's evaluation.  :class:`BeegfsClient` is
the kernel-module client on each compute node: every VFS operation pays a
syscall, a staging copy, and one or more RPC round trips.
"""

from repro.fs.beegfs.client import BeegfsClient
from repro.fs.beegfs.server import BeegfsServer
from repro.fs.beegfs.striping import StripePattern

__all__ = ["BeegfsClient", "BeegfsServer", "StripePattern"]

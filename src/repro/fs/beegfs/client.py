"""The BeeGFS kernel-module client on a compute node.

Implements the same operation surface as :class:`repro.fs.vfs.Filesystem`
(open / handle.write / fsync / close / mkdir / unlink / rename / stat /
listdir / read_file / write_file) but every operation is a syscall into
the kernel module followed by RPC round trips to the storage daemon.
Bulk writes additionally pay a client-side staging copy (user pages into
the module's message buffers), and all RPCs on one mount share a single
connection — concurrent writers on the same node serialize into one bulk
stream, which is the kernel client's real behaviour with one connection
per storage target and the reason a 16-rank Megatron checkpoint to a
shared filesystem crawls (Fig. 14).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import FsError
from repro.fs.beegfs.server import BeegfsServer
from repro.fs.vfs import DEFAULT_SYSCALL_NS
from repro.hw.content import Content
from repro.hw.node import Node
from repro.metrics import CostLedger
from repro.rdma.rpc import RpcClient
from repro.rdma.verbs import connect
from repro.sim import Environment, SharedChannel, Transfer
from repro.units import gbytes

#: User-page -> module-buffer staging copy rate.
STAGING_COPY_BPS = gbytes(8.0)


class BeegfsFileHandle:
    """Client-side open file: position tracking plus remote fd."""

    def __init__(self, client: "BeegfsClient", path: str, fd: int,
                 size: int) -> None:
        self.client = client
        self.path = path
        self.fd = fd
        self.position = 0
        self._size = size
        self.closed = False

    def _check_open(self) -> None:
        if self.closed:
            raise FsError(f"I/O on closed file {self.path!r}")

    def write(self, content: Content) -> Generator:
        self._check_open()
        yield from self.client._syscall()
        yield from self.client._stage(content.size)
        yield from self.client.rpc.call(
            "write", {"fd": self.fd, "offset": self.position,
                      "content": content},
            payload_size=content.size)
        self.position += content.size
        self._size = max(self._size, self.position)
        return content.size

    def read(self, length: int, direct: bool = False) -> Generator:
        # The kernel client always stages through its message buffers, so
        # `direct` is accepted for interface parity but has no effect.
        self._check_open()
        yield from self.client._syscall()
        result = yield from self.client.rpc.call(
            "read", {"fd": self.fd, "offset": self.position,
                     "length": length})
        content = result["content"]
        yield from self.client._stage(content.size)
        self.position += content.size
        return content

    def seek(self, position: int) -> None:
        self._check_open()
        if position < 0:
            raise FsError(f"negative seek position {position}")
        self.position = position

    def fsync(self) -> Generator:
        self._check_open()
        yield from self.client._syscall()
        yield from self.client.rpc.call("fsync", {"fd": self.fd})

    def close(self) -> Generator:
        self._check_open()
        yield from self.client._syscall()
        yield from self.client.rpc.call("close", {"fd": self.fd})
        self.closed = True

    @property
    def size(self) -> int:
        return self._size


class BeegfsClient:
    """One mounted BeeGFS filesystem on one compute node."""

    def __init__(self, env: Environment, node: Node, rpc: RpcClient,
                 server: Optional[BeegfsServer] = None,
                 name: str = "beegfs") -> None:
        self.env = env
        self.node = node
        self.rpc = rpc
        self.server = server
        self.name = name
        self.ledger = CostLedger()
        self.syscall_count = 0
        self.syscall_ns = DEFAULT_SYSCALL_NS
        self._staging = SharedChannel(env, STAGING_COPY_BPS,
                                      f"{name}.staging")

    @classmethod
    def mount(cls, env: Environment, node: Node, server: BeegfsServer,
              name: str = "beegfs") -> Generator:
        """Process: connect the node's NIC to the daemon and mount."""
        if node.nic is None:
            raise FsError(f"{node.name} has no RNIC to mount BeeGFS over")
        client_qp, server_qp = yield from connect(env, node.nic,
                                                  server.node.nic)
        server.serve(server_qp)
        return cls(env, node, RpcClient(env, client_qp), server=server,
                   name=name)

    # -- cost helpers ---------------------------------------------------------

    def _syscall(self) -> Generator:
        self.syscall_count += 1
        self.ledger.add("syscall", self.syscall_ns)
        yield self.env.timeout(self.syscall_ns)

    def _stage(self, size: int) -> Generator:
        if size == 0:
            return
        start = self.env.now
        yield Transfer(self.env, [self._staging], size,
                       label=f"{self.name}:staging")
        self.ledger.add("staging", self.env.now - start)

    # -- operation surface (mirrors Filesystem) -----------------------------------

    def open(self, path: str, create: bool = False, exclusive: bool = False,
             truncate: bool = False) -> Generator:
        yield from self._syscall()
        result = yield from self.rpc.call(
            "open", {"path": path, "create": create,
                     "exclusive": exclusive, "truncate": truncate})
        return BeegfsFileHandle(self, path, result["fd"], result["size"])

    def mkdir(self, path: str, parents: bool = False) -> Generator:
        yield from self._syscall()
        yield from self.rpc.call("mkdir", {"path": path, "parents": parents})

    def unlink(self, path: str) -> Generator:
        yield from self._syscall()
        yield from self.rpc.call("unlink", {"path": path})

    def rename(self, src: str, dst: str) -> Generator:
        yield from self._syscall()
        yield from self.rpc.call("rename", {"src": src, "dst": dst})

    def stat(self, path: str) -> Generator:
        yield from self._syscall()
        info = yield from self.rpc.call("stat", {"path": path})
        return info

    def listdir(self, path: str) -> Generator:
        yield from self._syscall()
        names = yield from self.rpc.call("listdir", {"path": path})
        return names

    def exists(self, path: str) -> bool:
        """Namespace probe straight at the server state (test convenience)."""
        if self.server is None:
            raise FsError("client was built without a server reference")
        return self.server.backing.exists(path)

    def read_file(self, path: str) -> Generator:
        handle = yield from self.open(path)
        content = yield from handle.read(handle.size)
        yield from handle.close()
        return content

    def write_file(self, path: str, content: Content,
                   fsync: bool = True) -> Generator:
        handle = yield from self.open(path, create=True, truncate=True)
        yield from handle.write(content)
        if fsync:
            yield from handle.fsync()
        yield from handle.close()

"""The BeeGFS storage/metadata daemon on the storage node.

One daemon serves both roles of the paper's single-server deployment:
metadata (lookup / create / stat — each costing meta-worker CPU plus the
backing filesystem's namespace charges) and chunk I/O (each write RPC
costs per-chunk worker CPU via the RPC layer, then DAX writes into the
backing ext4-DAX filesystems).  The worker pool is bounded like the real
daemon's ``tuneNumWorkers``, which is what makes sixteen concurrent GPT
shard writers queue instead of scaling.

Files are striped RAID-0 style across the storage targets (512 KiB
chunks); each target holds the file's chunks back-to-back in its own
chunk file, and a write touching several targets runs its per-target
pieces in parallel.  The paper's deployment has a single PMem target;
the multi-target path is exercised by the striping ablation bench.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Union

from repro.errors import ProtocolError
from repro.fs.beegfs.striping import StripePattern
from repro.fs.vfs import FileHandle, Filesystem
from repro.hw.content import CompositeContent, Content
from repro.hw.node import CpuSet, StorageNode
from repro.rdma.rpc import RpcServer
from repro.rdma.verbs import QueuePair
from repro.sim import AllOf, Environment
from repro.units import usecs

#: The real daemon defaults to 8 worker threads per service.
DEFAULT_WORKERS = 8
#: Metadata op handling: dentry work, ACL check, response build.
META_OP_CPU_NS = usecs(12)


class _OpenFile:
    """Server-side open file: one backing handle per storage target."""

    def __init__(self, path: str, handles: List[FileHandle],
                 size: int) -> None:
        self.path = path
        self.handles = handles
        self.size = size


class BeegfsServer:
    """Daemon state: backing target filesystems, fd table, RPC dispatch."""

    def __init__(self, env: Environment, node: StorageNode,
                 backing: Union[Filesystem, Sequence[Filesystem]],
                 workers: int = DEFAULT_WORKERS,
                 stripe: Optional[StripePattern] = None) -> None:
        self.env = env
        self.node = node
        if isinstance(backing, Filesystem):
            self.targets: List[Filesystem] = [backing]
        else:
            self.targets = list(backing)
        if not self.targets:
            raise ValueError("BeeGFS needs at least one storage target")
        self.backing = self.targets[0]
        self.stripe = stripe or StripePattern(targets=len(self.targets))
        if self.stripe.targets != len(self.targets):
            raise ValueError(
                f"stripe width {self.stripe.targets} != "
                f"{len(self.targets)} targets")
        self.workers = CpuSet(env, workers, name=f"{node.name}.beegfs-workers")
        self.rpc = RpcServer(env, self.workers)
        self._fd_table: Dict[int, _OpenFile] = {}
        self._file_sizes: Dict[str, int] = {}  # the metadata service
        self._next_fd = 3
        for op in ("open", "write", "read", "fsync", "close", "mkdir",
                   "unlink", "rename", "stat", "listdir"):
            self.rpc.register(op, getattr(self, f"_op_{op}"))

    def serve(self, qp: QueuePair) -> None:
        """Start serving a client connection (non-blocking)."""
        self.env.process(self.rpc.serve(qp), name="beegfs-serve")

    # -- fd bookkeeping ---------------------------------------------------------

    def _open_file_of(self, fd: int) -> _OpenFile:
        entry = self._fd_table.get(fd)
        if entry is None:
            raise ProtocolError(f"beegfs: unknown fd {fd}")
        return entry

    # -- RPC handlers (generator, return (result, response_size)) -----------------

    def _op_open(self, args: Dict[str, Any]) -> Generator:
        yield from self.workers.execute(META_OP_CPU_NS)
        path = args["path"]
        create = args.get("create", False)
        handles = []
        for target in self.targets:
            handle = yield from target.open(
                path, create=create,
                exclusive=args.get("exclusive", False),
                truncate=args.get("truncate", False))
            handles.append(handle)
        if args.get("truncate", False) or path not in self._file_sizes:
            if create and path not in self._file_sizes:
                self._file_sizes[path] = 0
            if args.get("truncate", False):
                self._file_sizes[path] = 0
        size = self._file_sizes.get(path, 0)
        self._next_fd += 1
        self._fd_table[self._next_fd] = _OpenFile(path, handles, size)
        return ({"fd": self._next_fd, "size": size}, 64)

    def _op_write(self, args: Dict[str, Any]) -> Generator:
        entry = self._open_file_of(args["fd"])
        content: Content = args["content"]
        offset = args["offset"]
        if self.stripe.targets == 1:
            # Fast path: no striping, one contiguous backing write.
            handle = entry.handles[0]
            handle.seek(offset)
            yield from handle.write(content)
            entry.size = max(entry.size, offset + content.size)
            self._file_sizes[entry.path] = max(
                self._file_sizes.get(entry.path, 0), entry.size)
            return ({"written": content.size}, 64)
        # Group the stripe pieces per target, then write targets in
        # parallel (each target's pieces stay in file order).
        per_target: Dict[int, List] = {}
        for target, file_off, length in self.stripe.split(offset,
                                                          content.size):
            per_target.setdefault(target, []).append((file_off, length))

        def write_target(target_index: int, pieces) -> Generator:
            handle = entry.handles[target_index]
            for file_off, length in pieces:
                piece = content.slice(file_off - offset, length)
                handle.seek(self.stripe.target_local_offset(file_off))
                yield from handle.write(piece)

        writers = [self.env.process(write_target(t, pieces),
                                    name=f"beegfs-write-t{t}")
                   for t, pieces in per_target.items()]
        yield AllOf(self.env, writers)
        entry.size = max(entry.size, offset + content.size)
        self._file_sizes[entry.path] = max(
            self._file_sizes.get(entry.path, 0), entry.size)
        return ({"written": content.size}, 64)

    def _op_read(self, args: Dict[str, Any]) -> Generator:
        entry = self._open_file_of(args["fd"])
        offset = args["offset"]
        length = min(args["length"], max(0, entry.size - offset))
        if self.stripe.targets == 1:
            handle = entry.handles[0]
            handle.seek(offset)
            content = yield from handle.read(length)
            return ({"content": content}, max(64, content.size))
        pieces = list(self.stripe.split(offset, length))
        results: List[Optional[Content]] = [None] * len(pieces)
        # One reader per target (a handle's position is stateful, so
        # same-target pieces must stay sequential); targets in parallel.
        per_target: Dict[int, List] = {}
        for index, (target, file_off, piece_len) in enumerate(pieces):
            per_target.setdefault(target, []).append(
                (index, file_off, piece_len))

        def read_target(target_index: int, target_pieces) -> Generator:
            handle = entry.handles[target_index]
            for index, file_off, piece_len in target_pieces:
                handle.seek(self.stripe.target_local_offset(file_off))
                results[index] = yield from handle.read(piece_len)

        readers = [self.env.process(read_target(t, tp),
                                    name=f"beegfs-read-t{t}")
                   for t, tp in per_target.items()]
        if readers:
            yield AllOf(self.env, readers)
        content = CompositeContent([c for c in results if c is not None])
        return ({"content": content}, max(64, content.size))

    def _op_fsync(self, args: Dict[str, Any]) -> Generator:
        entry = self._open_file_of(args["fd"])
        for handle in entry.handles:
            yield from handle.fsync()
        return ({}, 64)

    def _op_close(self, args: Dict[str, Any]) -> Generator:
        fd = args["fd"]
        entry = self._open_file_of(fd)
        for handle in entry.handles:
            yield from handle.close()
        del self._fd_table[fd]
        return ({}, 64)

    def _op_mkdir(self, args: Dict[str, Any]) -> Generator:
        yield from self.workers.execute(META_OP_CPU_NS)
        for target in self.targets:
            yield from target.mkdir(args["path"],
                                    parents=args.get("parents", False))
        return ({}, 64)

    def _op_unlink(self, args: Dict[str, Any]) -> Generator:
        yield from self.workers.execute(META_OP_CPU_NS)
        for target in self.targets:
            yield from target.unlink(args["path"])
        self._file_sizes.pop(args["path"], None)
        return ({}, 64)

    def _op_rename(self, args: Dict[str, Any]) -> Generator:
        yield from self.workers.execute(META_OP_CPU_NS)
        for target in self.targets:
            yield from target.rename(args["src"], args["dst"])
        if args["src"] in self._file_sizes:
            self._file_sizes[args["dst"]] = self._file_sizes.pop(
                args["src"])
        return ({}, 64)

    def _op_stat(self, args: Dict[str, Any]) -> Generator:
        yield from self.workers.execute(META_OP_CPU_NS)
        info = yield from self.backing.stat(args["path"])
        if info["kind"] == "file":
            info = {"kind": "file",
                    "size": self._file_sizes.get(args["path"], 0)}
        return (info, 64)

    def _op_listdir(self, args: Dict[str, Any]) -> Generator:
        yield from self.workers.execute(META_OP_CPU_NS)
        names = yield from self.backing.listdir(args["path"])
        return (names, 64 + 32 * len(names))

"""Local ext4 on an NVMe SSD (the paper's "ext4-NVMe" baseline).

Write path: the syscall copies user data into the page cache (a CPU
memcpy), then the block layer streams it to the device in fixed-size
requests, each paying the device's per-I/O latency.  Checkpoint files are
far larger than the dirty-page thresholds, so writeback is effectively
synchronous with the writer — which is what the paper's Fig. 13 profile
shows: ext4-NVMe spends ~54 % of a BERT checkpoint inside block-device
kernel crossings.  ``fsync`` flushes the journal (two small serialized
I/Os) after any remaining data.
"""

from __future__ import annotations

from typing import Generator

from repro.fs.vfs import FileHandle, Filesystem
from repro.hw.content import Content
from repro.hw.devices import NvmeDevice
from repro.sim import Environment, Transfer
from repro.units import gbytes, mib, transfer_time_ns

#: Page-cache copy rate: cache-cold memcpy from user buffers.
PAGE_CACHE_COPY_BPS = gbytes(8.0)
#: The block layer submits requests of this size for streaming writes.
BLOCK_REQUEST_BYTES = mib(1)


class LocalExtFilesystem(Filesystem):
    """ext4 over one local NVMe device."""

    def __init__(self, env: Environment, device: NvmeDevice,
                 name: str = "ext4-nvme") -> None:
        super().__init__(env, name)
        self.device = device

    def _write_data(self, handle: FileHandle, offset: int,
                    content: Content) -> Generator:
        size = content.size
        if size == 0:
            return
        # User -> page cache copy.
        copy_ns = transfer_time_ns(size, PAGE_CACHE_COPY_BPS)
        self.ledger.add("page_cache", copy_ns)
        yield self.env.timeout(copy_ns)
        # Block-layer writeback: one request stream; each request pays the
        # device's submission latency, data shares the device channel.
        requests = -(-size // BLOCK_REQUEST_BYTES)
        start = self.env.now
        transfer = Transfer(
            self.env, [self.device.write_channel], size,
            latency_ns=self.device.io_latency_ns * requests,
            label=f"{self.name}:writeback")
        yield transfer
        self.ledger.add("block_io", self.env.now - start)

    def _read_data(self, handle: FileHandle, offset: int,
                   length: int, direct: bool = False) -> Generator:
        if length == 0:
            return
        requests = -(-length // BLOCK_REQUEST_BYTES)
        start = self.env.now
        transfer = Transfer(
            self.env, [self.device.read_channel], length,
            latency_ns=self.device.io_latency_ns * requests,
            label=f"{self.name}:readahead")
        yield transfer
        self.ledger.add("block_io", self.env.now - start)
        if not direct:
            # Buffered read: device -> page cache -> user copy.
            copy_ns = transfer_time_ns(length, PAGE_CACHE_COPY_BPS)
            self.ledger.add("page_cache", copy_ns)
            yield self.env.timeout(copy_ns)

    def _fsync_file(self, handle: FileHandle) -> Generator:
        # Data is already on the device (write-through model); the journal
        # commit is two small ordered I/Os.
        start = self.env.now
        yield self.env.timeout(2 * self.device.io_latency_ns)
        self.ledger.add("block_io", self.env.now - start)

"""Filesystem substrates: VFS base, local ext4-on-NVMe, ext4-DAX on PMem,
and the BeeGFS-like distributed filesystem baseline."""

from repro.fs.dax import DaxFilesystem
from repro.fs.ext4 import LocalExtFilesystem
from repro.fs.vfs import FileHandle, Filesystem

__all__ = [
    "DaxFilesystem",
    "FileHandle",
    "Filesystem",
    "LocalExtFilesystem",
]

"""VFS base: namespace, path resolution, syscall cost accounting.

Every operation is a generator (simulation process) because every
operation costs time: a user→kernel crossing per syscall, a per-component
charge for path resolution and permission checks (the paper blames
exactly these for ResNet50's poor small-file checkpoint performance), and
whatever the concrete filesystem charges for data movement via the
``_write_data`` / ``_read_data`` / ``_fsync_file`` hooks.

Costs are also accumulated into ``self.ledger`` by category so breakdown
experiments (Table I, Fig. 13) can read exact shares.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.errors import (FileExists, FileNotFound, FsError, IsADirectory,
                          NotADirectory)
from repro.hw.content import Content, SegmentBuffer, ZeroContent
from repro.metrics import CostLedger
from repro.sim import Environment
from repro.units import usecs

#: One user->kernel->user crossing: syscall entry/exit plus VFS dispatch.
DEFAULT_SYSCALL_NS = usecs(1.2)
#: Per path component: dcache lookup + permission check.
DEFAULT_PATH_COMPONENT_NS = usecs(0.4)


class FileData:
    """Growable file contents built on a SegmentBuffer."""

    def __init__(self) -> None:
        self.size = 0
        self._buffer = SegmentBuffer(0)

    def _grow_to(self, size: int) -> None:
        if size <= self._buffer.size:
            self.size = max(self.size, size)
            return
        capacity = max(4096, self._buffer.size)
        while capacity < size:
            capacity *= 2
        grown = SegmentBuffer(capacity)
        if self.size > 0:
            grown.write(0, self._buffer.read(0, self.size))
        self._buffer = grown
        self.size = size

    def write(self, offset: int, content: Content) -> None:
        self._grow_to(offset + content.size)
        self._buffer.write(offset, content)

    def read(self, offset: int, length: int) -> Content:
        if offset >= self.size:
            return ZeroContent(0)
        length = min(length, self.size - offset)
        return self._buffer.read(offset, length)

    def truncate(self) -> None:
        self.size = 0
        self._buffer = SegmentBuffer(0)


class Inode:
    """A file or directory."""

    def __init__(self, kind: str, name: str) -> None:
        if kind not in ("file", "dir"):
            raise ValueError(f"bad inode kind {kind!r}")
        self.kind = kind
        self.name = name
        self.children: Dict[str, "Inode"] = {}
        self.data = FileData() if kind == "file" else None

    @property
    def is_dir(self) -> bool:
        return self.kind == "dir"


def split_path(path: str) -> List[str]:
    """Normalize an absolute path into components."""
    if not path.startswith("/"):
        raise FsError(f"paths must be absolute, got {path!r}")
    return [part for part in path.split("/") if part]


class FileHandle:
    """An open file: sequential/positional I/O as simulation processes."""

    def __init__(self, fs: "Filesystem", path: str, inode: Inode) -> None:
        self.fs = fs
        self.path = path
        self.inode = inode
        self.position = 0
        self.closed = False
        #: Bytes written since the last fsync (dirty data).
        self.dirty_bytes = 0

    def _check_open(self) -> None:
        if self.closed:
            raise FsError(f"I/O on closed file {self.path!r}")

    def write(self, content: Content) -> Generator:
        """Process: append/overwrite at the current position."""
        self._check_open()
        yield from self.fs._charge_syscall("write")
        yield from self.fs._write_data(self, self.position, content)
        self.inode.data.write(self.position, content)
        self.position += content.size
        self.dirty_bytes += content.size
        return content.size

    def read(self, length: int, direct: bool = False) -> Generator:
        """Process: read up to *length* bytes at the current position.

        ``direct=True`` models O_DIRECT / GPUDirect-Storage reads that
        bypass the page cache (concrete filesystems decide what that
        skips).
        """
        self._check_open()
        yield from self.fs._charge_syscall("read")
        content = self.inode.data.read(self.position, length)
        yield from self.fs._read_data(self, self.position, content.size,
                                      direct=direct)
        self.position += content.size
        return content

    def seek(self, position: int) -> None:
        """Reposition (free: lseek never leaves the process)."""
        self._check_open()
        if position < 0:
            raise FsError(f"negative seek position {position}")
        self.position = position

    def fsync(self) -> Generator:
        """Process: force dirty data and metadata to stable storage."""
        self._check_open()
        yield from self.fs._charge_syscall("fsync")
        yield from self.fs._fsync_file(self)
        self.dirty_bytes = 0

    def close(self) -> Generator:
        """Process: release the handle."""
        self._check_open()
        yield from self.fs._charge_syscall("close")
        yield from self.fs._close_file(self)
        self.closed = True

    @property
    def size(self) -> int:
        return self.inode.data.size


class Filesystem:
    """In-memory namespace plus cost accounting; subclasses add devices."""

    def __init__(self, env: Environment, name: str,
                 syscall_ns: int = DEFAULT_SYSCALL_NS,
                 path_component_ns: int = DEFAULT_PATH_COMPONENT_NS) -> None:
        self.env = env
        self.name = name
        self.syscall_ns = syscall_ns
        self.path_component_ns = path_component_ns
        self.root = Inode("dir", "/")
        self.ledger = CostLedger()
        self.syscall_count = 0

    # -- cost hooks (overridden by concrete filesystems) ---------------------------

    def _charge_syscall(self, _op: str) -> Generator:
        self.syscall_count += 1
        self.ledger.add("syscall", self.syscall_ns)
        yield self.env.timeout(self.syscall_ns)

    def _charge_path(self, components: int) -> Generator:
        ns = (components + 1) * self.path_component_ns
        self.ledger.add("metadata", ns)
        yield self.env.timeout(ns)

    def _write_data(self, handle: FileHandle, offset: int,
                    content: Content) -> Generator:
        """Timing for moving *content* into storage; default: free."""
        return
        yield  # pragma: no cover - makes this a generator

    def _read_data(self, handle: FileHandle, offset: int,
                   length: int, direct: bool = False) -> Generator:
        return
        yield  # pragma: no cover

    def _fsync_file(self, handle: FileHandle) -> Generator:
        return
        yield  # pragma: no cover

    def _close_file(self, handle: FileHandle) -> Generator:
        return
        yield  # pragma: no cover

    # -- namespace ---------------------------------------------------------------

    def _walk(self, components: List[str]) -> Inode:
        node = self.root
        for part in components:
            if not node.is_dir:
                raise NotADirectory(f"{part!r} under a non-directory")
            child = node.children.get(part)
            if child is None:
                raise FileNotFound("/" + "/".join(components))
            node = child
        return node

    def _parent_of(self, path: str) -> (Inode, str):
        components = split_path(path)
        if not components:
            raise FsError("operation on filesystem root")
        parent = self._walk(components[:-1])
        if not parent.is_dir:
            raise NotADirectory(path)
        return parent, components[-1]

    # -- operations (all processes) ---------------------------------------------------

    def open(self, path: str, create: bool = False, exclusive: bool = False,
             truncate: bool = False) -> Generator:
        """Process: open *path*; optionally create/truncate."""
        components = split_path(path)
        yield from self._charge_syscall("open")
        yield from self._charge_path(len(components))
        parent, leaf = self._parent_of(path)
        inode = parent.children.get(leaf)
        if inode is None:
            if not create:
                raise FileNotFound(path)
            inode = Inode("file", leaf)
            parent.children[leaf] = inode
            yield from self._charge_path(1)  # directory entry insertion
        elif exclusive and create:
            raise FileExists(path)
        if inode.is_dir:
            raise IsADirectory(path)
        if truncate:
            inode.data.truncate()
        return FileHandle(self, path, inode)

    def mkdir(self, path: str, parents: bool = False) -> Generator:
        """Process: create a directory (optionally with parents)."""
        components = split_path(path)
        yield from self._charge_syscall("mkdir")
        yield from self._charge_path(len(components))
        node = self.root
        for depth, part in enumerate(components):
            child = node.children.get(part)
            if child is None:
                is_leaf = depth == len(components) - 1
                if not (parents or is_leaf):
                    raise FileNotFound("/" + "/".join(components[:depth + 1]))
                child = Inode("dir", part)
                node.children[part] = child
            elif not child.is_dir:
                raise NotADirectory(path)
            node = child

    def unlink(self, path: str) -> Generator:
        """Process: remove a file."""
        yield from self._charge_syscall("unlink")
        yield from self._charge_path(len(split_path(path)))
        parent, leaf = self._parent_of(path)
        inode = parent.children.get(leaf)
        if inode is None:
            raise FileNotFound(path)
        if inode.is_dir:
            raise IsADirectory(path)
        del parent.children[leaf]

    def rename(self, src: str, dst: str) -> Generator:
        """Process: atomically move *src* over *dst*."""
        yield from self._charge_syscall("rename")
        yield from self._charge_path(
            len(split_path(src)) + len(split_path(dst)))
        src_parent, src_leaf = self._parent_of(src)
        inode = src_parent.children.get(src_leaf)
        if inode is None:
            raise FileNotFound(src)
        dst_parent, dst_leaf = self._parent_of(dst)
        del src_parent.children[src_leaf]
        inode.name = dst_leaf
        dst_parent.children[dst_leaf] = inode

    def stat(self, path: str) -> Generator:
        """Process: return ``{kind, size}`` for *path*."""
        components = split_path(path)
        yield from self._charge_syscall("stat")
        yield from self._charge_path(len(components))
        inode = self._walk(components)
        size = inode.data.size if inode.kind == "file" else 0
        return {"kind": inode.kind, "size": size}

    def listdir(self, path: str) -> Generator:
        """Process: list directory entries."""
        components = split_path(path) if path != "/" else []
        yield from self._charge_syscall("listdir")
        yield from self._charge_path(len(components))
        inode = self._walk(components)
        if not inode.is_dir:
            raise NotADirectory(path)
        return sorted(inode.children)

    def exists(self, path: str) -> bool:
        """Namespace probe without timing (test convenience)."""
        try:
            self._walk(split_path(path))
            return True
        except FsError:
            return False

    def read_file(self, path: str) -> Generator:
        """Process: open, read everything, close; returns the content."""
        handle = yield from self.open(path)
        content = yield from handle.read(handle.size)
        yield from handle.close()
        return content

    def write_file(self, path: str, content: Content,
                   fsync: bool = True) -> Generator:
        """Process: create/truncate, write everything, fsync, close."""
        handle = yield from self.open(path, create=True, truncate=True)
        yield from handle.write(content)
        if fsync:
            yield from handle.fsync()
        yield from handle.close()

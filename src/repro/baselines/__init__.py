"""Baseline checkpointing systems the paper compares against:
synchronous torch.save to a filesystem, and CheckFreq's two-phase
snapshot + asynchronous persist."""

from repro.baselines.checkfreq import CheckFreqPolicy, recommend_frequency
from repro.baselines.policies import SyncCheckpointPolicy
from repro.baselines.torch_save import (CUDA_D2H_PAGEABLE_BPS,
                                        TorchSaveCheckpointer)

__all__ = [
    "CUDA_D2H_PAGEABLE_BPS",
    "CheckFreqPolicy",
    "SyncCheckpointPolicy",
    "TorchSaveCheckpointer",
    "recommend_frequency",
]

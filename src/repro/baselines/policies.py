"""Generic checkpoint policies used across experiments.

:class:`SyncCheckpointPolicy` is the "ordinary PyTorch" timeline of
Fig. 9(a): every k-th iteration blocks until the full checkpoint path
completes.  It works with any checkpointer exposing a blocking
``checkpoint(model)`` process — torch.save or the synchronous Portus
client alike, which is what makes the Fig. 9 comparison apples-to-apples.
"""

from __future__ import annotations

from typing import Generator

from repro.dnn.training import CheckpointHook, TrainingJob
from repro.sim import Environment


class SyncCheckpointPolicy(CheckpointHook):
    """Blocking checkpoint of every rank, every *frequency* iterations."""

    def __init__(self, env: Environment, checkpointer,
                 frequency: int) -> None:
        if frequency < 1:
            raise ValueError(f"frequency must be >= 1, got {frequency}")
        self.env = env
        self.checkpointer = checkpointer
        self.frequency = frequency
        self.checkpoints_taken = 0
        self.stall_ns = 0

    def on_job_start(self, job: TrainingJob) -> Generator:
        prepare = getattr(self.checkpointer, "prepare", None)
        if prepare is not None:
            yield from prepare()

    def after_update(self, job: TrainingJob, iteration: int) -> Generator:
        if iteration % self.frequency:
            return
        start = self.env.now
        for model in job.models:
            yield from self.checkpointer.checkpoint(model)
        self.stall_ns += self.env.now - start
        self.checkpoints_taken += 1

"""CheckFreq: two-phase snapshot + asynchronous persist (FAST '21).

CheckFreq splits a checkpoint into a short blocking *snapshot* (copy the
model out of GPU memory while parameters are stable) and a long *persist*
(serialize + write) that overlaps subsequent compute.  Two rules govern
the pipeline, both reproduced here:

* a new snapshot cannot start until the previous persist finished (one
  in-flight checkpoint — otherwise host memory and write bandwidth grow
  without bound), so when the persist takes longer than the checkpoint
  interval the training loop stalls waiting for the writer: this backlog
  stall is exactly the <43 % GPU utilization of the paper's Fig. 16;
* the job must not exit with a checkpoint half-persisted, so
  ``on_job_end`` drains the pipeline.

``recommend_frequency`` implements CheckFreq's profile-based frequency
tuner: the smallest interval whose expected overhead stays within budget.
"""

from __future__ import annotations

import math
from typing import Generator, Optional

from repro.baselines.torch_save import TorchSaveCheckpointer
from repro.dnn.training import CheckpointHook, TrainingJob
from repro.sim import Environment, Event


def recommend_frequency(iteration_ns: int, snapshot_ns: int,
                        persist_ns: int,
                        overhead_budget: float = 0.035) -> int:
    """CheckFreq's tuner: checkpoint every k iterations, k minimal s.t.
    (snapshot stall + persist backlog) / (k * iteration) <= budget."""
    if overhead_budget <= 0:
        raise ValueError(f"budget must be positive, got {overhead_budget}")
    k = 1
    while True:
        window = k * iteration_ns
        stall = snapshot_ns + max(0, persist_ns - (window - snapshot_ns))
        if stall / (window + stall) <= overhead_budget:
            return k
        k = math.ceil(k * 1.5) if k > 4 else k + 1
        if k > 1_000_000:
            raise ValueError("no frequency satisfies the overhead budget")


class CheckFreqPolicy(CheckpointHook):
    """Training-loop hook implementing the CheckFreq pipeline."""

    def __init__(self, env: Environment,
                 checkpointer: TorchSaveCheckpointer,
                 frequency: int) -> None:
        if frequency < 1:
            raise ValueError(f"frequency must be >= 1, got {frequency}")
        self.env = env
        self.checkpointer = checkpointer
        self.frequency = frequency
        self._persist_done: Optional[Event] = None
        self.snapshots_taken = 0
        self.persists_completed = 0
        self.stall_ns = 0
        self.final_drain_ns = 0
        self.last_persisted_step = 0

    # -- hook implementation --------------------------------------------------------

    def on_job_start(self, job: TrainingJob) -> Generator:
        yield from self.checkpointer.prepare()

    def after_update(self, job: TrainingJob, iteration: int) -> Generator:
        if iteration % self.frequency:
            return
        # Rule 1: wait out the previous persist (the backlog stall).
        yield from self._drain()
        # Snapshot phase: blocking, but every rank's D2H copy runs on its
        # own GPU's PCIe link concurrently.
        from repro.sim import AllOf

        copies = [
            self.env.process(
                self.checkpointer.snapshot_to_host(model),
                name=f"checkfreq-snapshot-{model.name}")
            for model in job.models
        ]
        results = yield AllOf(self.env, copies)
        snapshots = [(model.name, snapshot, iteration)
                     for model, snapshot in zip(job.models,
                                                results.values())]
        self.snapshots_taken += 1
        # Persist phase: run in the background.
        done = self.env.event()
        self._persist_done = done
        self.env.process(self._persist(snapshots, done),
                         name=f"checkfreq-persist-{iteration}")

    def on_job_end(self, job: TrainingJob) -> Generator:
        start = self.env.now
        yield from self._drain(count_stall=False)
        self.final_drain_ns = self.env.now - start

    # -- internals ---------------------------------------------------------------------

    def _drain(self, count_stall: bool = True) -> Generator:
        if self._persist_done is not None and \
                not self._persist_done.triggered:
            start = self.env.now
            yield self._persist_done
            if count_stall:
                self.stall_ns += self.env.now - start

    def _persist(self, snapshots, done: Event) -> Generator:
        for name, snapshot, iteration in snapshots:
            yield from self.checkpointer.persist_snapshot(name, snapshot)
            self.last_persisted_step = iteration
        self.persists_completed += 1
        done.succeed()

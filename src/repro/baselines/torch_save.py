"""The ordinary ``torch.save`` checkpointing path (and ``torch.load``).

This is the datapath Figure 3 dissects: device-to-host copy of every
tensor (pageable cuMemcpy), CPU serialization into a file image, then a
filesystem write (whose own cost structure depends on the target:
ext4-NVMe, ext4-DAX, or BeeGFS).  Restores use GPUDirect-Storage-style
direct reads where the target filesystem supports them, then pay
deserialization and the host-to-GPU copy.

The checkpointer writes to ``<dir>/<model>.pt`` via the classic
tmp-file + rename pattern for crash safety, and emits one write per
tensor record (zipfile-style), which is what makes many-small-tensor
models pay proportionally more in per-op overhead — the paper's ResNet50
observation.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.dnn.serialize import (deserialization_time_ns,
                                 deserialize_state_dict,
                                 serialization_time_ns,
                                 serialize_state_dict)
from repro.dnn.tensor import ModelInstance
from repro.hw.content import Content
from repro.hw.devices import GpuMemory
from repro.hw.node import CpuSet
from repro.metrics import CostLedger
from repro.sim import Environment, Transfer
from repro.units import gbytes

#: Pageable cuMemcpyDtoH effective rate (Table I anchor: the GPU->DRAM
#: copy is 15.5 % of a BERT checkpoint; see repro.harness.calibration).
CUDA_D2H_PAGEABLE_BPS = gbytes(4.65)
#: Host-to-device copies ride posted writes and are faster.
CUDA_H2D_BPS = gbytes(9.0)


class TorchSaveCheckpointer:
    """Blocking save/load of one model per call against one filesystem."""

    def __init__(self, env: Environment, fs, cpus: CpuSet,
                 directory: str = "/checkpoints",
                 use_gds_restore: bool = True) -> None:
        self.env = env
        self.fs = fs
        self.cpus = cpus
        self.directory = directory.rstrip("/") or "/checkpoints"
        self.use_gds_restore = use_gds_restore
        self.ledger = CostLedger()
        self.checkpoints_written = 0
        self._prepared = False

    def _path_for(self, model_name: str) -> str:
        safe = model_name.replace("/", "_")
        return f"{self.directory}/{safe}.pt"

    def prepare(self) -> Generator:
        """Process: create the checkpoint directory (idempotent)."""
        if not self._prepared:
            try:
                yield from self.fs.mkdir(self.directory)
            except Exception:
                pass  # already exists — racing jobs share the directory
            self._prepared = True

    # -- snapshot phase -----------------------------------------------------------

    def snapshot_to_host(self, model: ModelInstance) -> Generator:
        """Process: blocking pageable D2H copy; returns captured contents.

        This is the part of the datapath that must hold the training step
        still — CheckFreq reuses it as its snapshot() phase.
        """
        gpu_tensors = [t for t in model.tensors
                       if isinstance(t.device, GpuMemory)]
        total = sum(t.size_bytes for t in gpu_tensors)
        start = self.env.now
        if total:
            device = gpu_tensors[0].device
            yield Transfer(
                self.env, [device.read_channel, device.pcie_read], total,
                rate_cap_bps=CUDA_D2H_PAGEABLE_BPS, label="cuMemcpyDtoH")
        self.ledger.add("gpu_to_dram", self.env.now - start)
        return {t.name: (t.spec, t.content()) for t in model.tensors}

    # -- persist phase -------------------------------------------------------------

    def persist_snapshot(self, model_name: str,
                         snapshot: Dict[str, Tuple],
                         tensor_count: Optional[int] = None) -> Generator:
        """Process: serialize captured contents and write the file."""
        specs = [spec for spec, _content in snapshot.values()]
        total = sum(spec.size_bytes for spec in specs)
        count = tensor_count if tensor_count is not None else len(specs)

        start = self.env.now
        yield from self.cpus.execute(serialization_time_ns(total, count))
        self.ledger.add("serialization", self.env.now - start)

        start = self.env.now
        path = self._path_for(model_name)
        tmp_path = path + ".tmp"
        handle = yield from self.fs.open(tmp_path, create=True,
                                         truncate=True)
        # Zipfile-style image: one header record, then one write per
        # tensor payload.
        image = _build_image(snapshot)
        yield from handle.write(image.header)
        for payload in image.payloads:
            yield from handle.write(payload)
        yield from handle.fsync()
        yield from handle.close()
        yield from self.fs.rename(tmp_path, path)
        self.ledger.add("fs_write", self.env.now - start)
        self.checkpoints_written += 1

    def checkpoint(self, model: ModelInstance) -> Generator:
        """Process: the full blocking torch.save path for one model."""
        yield from self.prepare()
        snapshot = yield from self.snapshot_to_host(model)
        yield from self.persist_snapshot(model.name, snapshot)

    # -- restore --------------------------------------------------------------------

    def restore(self, model: ModelInstance) -> Generator:
        """Process: torch.load into an already-constructed model.

        Returns the restored contents by tensor name; callers verify with
        :meth:`ModelInstance.verify_against` against the checkpointed
        step.
        """
        path = self._path_for(model.name)
        handle = yield from self.fs.open(path)
        start = self.env.now
        content = yield from handle.read(handle.size,
                                         direct=self.use_gds_restore)
        yield from handle.close()
        self.ledger.add("fs_read", self.env.now - start)

        parsed = deserialize_state_dict(content)
        total = sum(spec.size_bytes for spec, _c in parsed.values())
        start = self.env.now
        yield from self.cpus.execute(
            deserialization_time_ns(total, len(parsed)))
        self.ledger.add("deserialization", self.env.now - start)

        gpu_tensors = [t for t in model.tensors
                       if isinstance(t.device, GpuMemory)]
        start = self.env.now
        if gpu_tensors:
            device = gpu_tensors[0].device
            total_gpu = sum(t.size_bytes for t in gpu_tensors)
            yield Transfer(
                self.env, [device.pcie_write, device.write_channel],
                total_gpu, rate_cap_bps=CUDA_H2D_BPS, label="cuMemcpyHtoD")
        self.ledger.add("dram_to_gpu", self.env.now - start)

        restored: Dict[str, Content] = {}
        for tensor in model.tensors:
            entry = parsed.get(tensor.name)
            if entry is None:
                continue
            _spec, payload = entry
            tensor.allocation.write(0, payload)
            restored[tensor.name] = payload
        return restored


class _Image:
    def __init__(self, header: Content, payloads) -> None:
        self.header = header
        self.payloads = payloads


def _build_image(snapshot: Dict[str, Tuple]) -> _Image:
    """Split a serialized state dict into header + per-tensor writes."""
    from repro.dnn.tensor import Tensor  # noqa: F401 (doc reference)
    # Reuse the canonical serializer for the byte layout, then split it.
    class _Shim:
        def __init__(self, spec, content):
            self.spec = spec
            self._content = content
            self.size_bytes = spec.size_bytes
            self.name = spec.name

        def content(self):
            return self._content

    shims = [_Shim(spec, content) for spec, content in snapshot.values()]
    image = serialize_state_dict(shims)
    header_size = image.size - sum(s.size_bytes for s in shims)
    header = image.slice(0, header_size)
    payloads = [shim.content() for shim in shims]
    return _Image(header, payloads)


def _safe_equals(got: Content, expected: Content) -> bool:
    try:
        return expected.equals(got)
    except ValueError:
        return False

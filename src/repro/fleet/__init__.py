"""Fleet-scale sharded checkpoint service.

One daemon/pool pair is a *shard*; this package turns N shards into a
single logical checkpoint service:

* :mod:`repro.fleet.ring` — deterministic consistent-hash placement of
  ``(tenant, model)`` keys onto shards (virtual nodes, stable under
  shard add/remove, no reliance on the salted builtin ``hash``);
* :mod:`repro.fleet.tenants` — per-tenant byte quotas and token-bucket
  bandwidth budgets, shared across every shard and daemon restart;
* :mod:`repro.fleet.admission` — bounded per-daemon inflight
  registration/ingest with typed rejects carrying a retry-after hint;
* :mod:`repro.fleet.client` — the client-side router: resolves
  placement, registers through the right shard's daemon, migrates
  live models between pools through the transfer engine;
* :mod:`repro.fleet.workload` — the zoo-driven tenant-table generator
  shared by ``examples/multi_tenant.py`` and ``bench_fleet``.

See DESIGN.md §13 for the architecture and the migration commit
ordering.
"""

from repro.fleet.admission import AdmissionController
from repro.fleet.client import FleetClient
from repro.fleet.ring import PlacementRing
from repro.fleet.tenants import TenantRegistry
from repro.fleet.workload import TenantSpec, generate_tenants

__all__ = [
    "AdmissionController",
    "FleetClient",
    "PlacementRing",
    "TenantRegistry",
    "TenantSpec",
    "generate_tenants",
]

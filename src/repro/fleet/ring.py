"""Consistent-hash placement ring: ``(tenant, model)`` -> shard.

The ring hashes every shard name onto ``vnodes`` points of a 64-bit
circle and assigns a key to the first point clockwise from the key's
own hash.  Two properties matter here and both are tested:

* **determinism** — points come from BLAKE2b digests, never the salted
  builtin ``hash``, so the mapping is bit-identical across runs *and*
  across ``PYTHONHASHSEED`` values;
* **stability** — adding or removing one shard only moves the keys
  whose clockwise successor changed, roughly ``1/n`` of the keyspace.

Migration uses the **pin table**: :meth:`PlacementRing.assign` pins a
key to an explicit owner, overriding the hash mapping.  The fleet
client flips a model's pin *after* the destination daemon has committed
the copied checkpoint, so a lookup never points at a shard that cannot
serve the model (DESIGN.md §13).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

from repro.errors import ReproError

#: Virtual nodes per shard.  128 points keeps the max/min keyspace
#: imbalance under ~1.3x for small fleets while staying cheap to build.
DEFAULT_VNODES = 128


def _digest64(data: bytes) -> int:
    """A 64-bit point on the ring, independent of PYTHONHASHSEED."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big")


def ring_key(tenant: str, model: str) -> str:
    """The placement key for one model instance of one tenant."""
    return f"{tenant}/{model}"


class PlacementRing:
    """Deterministic consistent-hash ring with a migration pin table."""

    def __init__(self, nodes: Iterable[str] = (),
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._points: List[int] = []      # sorted hash points
        self._owners: List[str] = []      # owner per point (parallel)
        self._nodes: Dict[str, List[int]] = {}  # node -> its points
        self._pins: Dict[str, str] = {}   # key -> explicitly pinned node
        self.version = 0                  # bumped on every mutation
        for node in nodes:
            self.add_node(node)

    # -- membership -------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ReproError(f"ring already contains node {node!r}")
        points = []
        for replica in range(self.vnodes):
            point = _digest64(f"{node}#{replica}".encode("utf-8"))
            # A 64-bit collision across vnode labels is effectively
            # impossible; refuse loudly rather than silently overwrite.
            idx = bisect.bisect_left(self._points, point)
            if idx < len(self._points) and self._points[idx] == point:
                raise ReproError(f"ring point collision at {point:#x}")
            self._points.insert(idx, point)
            self._owners.insert(idx, node)
            points.append(point)
        self._nodes[node] = points
        self.version += 1

    def remove_node(self, node: str) -> None:
        points = self._nodes.pop(node, None)
        if points is None:
            raise ReproError(f"ring does not contain node {node!r}")
        if not self._nodes:
            self._nodes[node] = points
            raise ReproError("cannot remove the last ring node")
        for point in points:
            idx = bisect.bisect_left(self._points, point)
            del self._points[idx]
            del self._owners[idx]
        # Pins onto a departed shard would dangle; fall back to hashing.
        self._pins = {k: v for k, v in self._pins.items() if v != node}
        self.version += 1

    # -- lookup -----------------------------------------------------------

    def lookup(self, tenant: str, model: str) -> str:
        """The shard owning ``(tenant, model)`` (pin wins over hash)."""
        key = ring_key(tenant, model)
        pinned = self._pins.get(key)
        if pinned is not None:
            return pinned
        return self._hash_owner(key)

    def _hash_owner(self, key: str) -> str:
        if not self._points:
            raise ReproError("placement ring has no nodes")
        point = _digest64(key.encode("utf-8"))
        idx = bisect.bisect_right(self._points, point)
        if idx == len(self._points):
            idx = 0  # wrap: first point clockwise from 2^64
        return self._owners[idx]

    # -- migration pins ---------------------------------------------------

    def assign(self, tenant: str, model: str, node: str) -> None:
        """Pin a key to *node*, overriding the hash placement."""
        if node not in self._nodes:
            raise ReproError(f"cannot pin to unknown node {node!r}")
        self._pins[ring_key(tenant, model)] = node
        self.version += 1

    def unpin(self, tenant: str, model: str) -> None:
        if self._pins.pop(ring_key(tenant, model), None) is not None:
            self.version += 1

    def pinned(self, tenant: str, model: str) -> bool:
        return ring_key(tenant, model) in self._pins

    # -- introspection ----------------------------------------------------

    def spread(self, keys: Iterable[Tuple[str, str]]) -> Dict[str, int]:
        """How many of *keys* land on each shard (pins included)."""
        counts = {node: 0 for node in self._nodes}
        for tenant, model in keys:
            counts[self.lookup(tenant, model)] += 1
        return counts

    def __repr__(self) -> str:
        return (f"<PlacementRing nodes={len(self._nodes)} "
                f"vnodes={self.vnodes} pins={len(self._pins)} "
                f"v{self.version}>")

"""Per-daemon admission control: bounded inflight work, typed rejects.

One :class:`AdmissionController` guards one daemon.  It bounds how many
registrations and checkpoint ingests the daemon will work on
concurrently; beyond the bound, requests are rejected *before* any
pool/engine state changes with :class:`~repro.errors.AdmissionReject`
carrying a deterministic ``retry_after_ns`` hint.  Rejection is cheap
(no QP churn — the client keeps its transport and just sleeps), so the
daemon sheds load instead of queueing unboundedly and wedging.

The retry-after hint grows linearly with the *consecutive* reject
streak (capped), which spreads a thundering herd without randomness:
the i-th rejected client in a burst is told to come back later than
the (i-1)-th, and the schedule is bit-identical across runs.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import AdmissionReject, ReproError
from repro.units import usecs

#: Default concurrent checkpoint ingests one daemon will accept.
DEFAULT_MAX_INFLIGHT_INGESTS = 8
#: Default concurrent registrations (attach storms after a restart).
DEFAULT_MAX_INFLIGHT_REGISTRATIONS = 16
#: Base retry-after; the streak multiplies it up to 8x.
DEFAULT_RETRY_AFTER_NS = usecs(200)

_KINDS = ("register", "ingest")


class AdmissionController:
    """Bounded inflight admission for one daemon instance."""

    def __init__(self,
                 max_ingests: int = DEFAULT_MAX_INFLIGHT_INGESTS,
                 max_registrations: int = DEFAULT_MAX_INFLIGHT_REGISTRATIONS,
                 retry_after_ns: int = DEFAULT_RETRY_AFTER_NS,
                 obs=None, shard: str = "") -> None:
        if max_ingests < 1 or max_registrations < 1:
            raise ValueError("admission bounds must be >= 1")
        self._limits = {"register": int(max_registrations),
                        "ingest": int(max_ingests)}
        self._inflight: Dict[str, int] = {k: 0 for k in _KINDS}
        self._reject_streak: Dict[str, int] = {k: 0 for k in _KINDS}
        self.retry_after_ns = int(retry_after_ns)
        self.rejects: Dict[str, int] = {k: 0 for k in _KINDS}
        self.obs = obs
        self.shard = shard

    def enter(self, kind: str) -> None:
        """Admit one unit of *kind* work or raise ``AdmissionReject``."""
        if kind not in self._limits:
            raise ReproError(f"unknown admission kind {kind!r}")
        if self._inflight[kind] >= self._limits[kind]:
            self._reject_streak[kind] += 1
            self.rejects[kind] += 1
            if self.obs is not None:
                self.obs.metrics.counter(
                    f"fleet.admission.rejects.{kind}").inc()
            hint = self.retry_after_ns * min(self._reject_streak[kind], 8)
            where = f" on {self.shard}" if self.shard else ""
            raise AdmissionReject(
                f"{kind} admission full{where} "
                f"({self._inflight[kind]}/{self._limits[kind]} inflight), "
                f"retry in {hint} ns", retry_after_ns=hint)
        self._inflight[kind] += 1

    def exit(self, kind: str) -> None:
        """Release one unit of *kind* work (always pair with enter)."""
        if self._inflight[kind] <= 0:
            raise ReproError(f"admission exit({kind!r}) without enter")
        self._inflight[kind] -= 1
        self._reject_streak[kind] = 0

    def inflight(self, kind: str) -> int:
        return self._inflight[kind]

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        return {kind: {"inflight": self._inflight[kind],
                       "limit": self._limits[kind],
                       "rejects": self.rejects[kind]}
                for kind in _KINDS}

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{k}={self._inflight[k]}/{self._limits[k]}" for k in _KINDS)
        return f"<AdmissionController {parts}>"

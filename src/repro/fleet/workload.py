"""The shared multi-tenant workload generator.

``examples/multi_tenant.py`` and ``benchmarks/bench_fleet.py`` both
draw their tenant tables from here so "the example, scaled ~100x" is
literally the same generator at a different count.  Determinism: the
table is a pure function of ``(count, seed)`` — model rotation and
placement use fixed cycles plus a ``random.Random(seed)`` stream, never
the salted builtin ``hash``.

The first four tenants of the default rotation reproduce the classic
hard-coded table (resnet50 / vgg19_bn / swin_b / vit_l_32 with
checkpoint frequencies 1/2/2/4), so ``generate_tenants(4)`` is the
original example verbatim.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

#: The classic example table first, then the rest of the zoo roughly
#: small-to-large so scaled fleets mix sizes evenly.
DEFAULT_MODEL_CYCLE = (
    "resnet50", "vgg19_bn", "swin_b", "vit_l_32",
    "resnet18", "convnext_tiny", "swin_t", "resnet34",
    "resnet101", "convnext_small", "swin_s", "alexnet",
    "vit_b_16", "vit_b_32", "convnext_base",
)
#: Checkpoint every N iterations, cycled per tenant (matches the
#: classic table's 1/2/2/4 for the first four).
DEFAULT_FREQUENCY_CYCLE = (1, 2, 2, 4)


class TenantSpec:
    """One tenant's workload row."""

    __slots__ = ("name", "model", "frequency", "gpu_slot", "model_seed")

    def __init__(self, name: str, model: str, frequency: int,
                 gpu_slot: int, model_seed: int) -> None:
        self.name = name
        self.model = model
        self.frequency = frequency
        #: Flat GPU index over the cluster's client nodes; the harness
        #: maps it onto (node, gpu) round-robin.
        self.gpu_slot = gpu_slot
        self.model_seed = model_seed

    @property
    def instance_name(self) -> str:
        """The registered model name: unique per tenant."""
        return f"{self.name}.{self.model}"

    def __repr__(self) -> str:
        return (f"<TenantSpec {self.name} {self.model} "
                f"freq={self.frequency} gpu={self.gpu_slot}>")


def generate_tenants(count: int, seed: int = 0,
                     models: Optional[Sequence[str]] = None,
                     frequencies: Optional[Sequence[int]] = None
                     ) -> List[TenantSpec]:
    """The deterministic tenant table for a *count*-tenant fleet run."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    models = tuple(models) if models else DEFAULT_MODEL_CYCLE
    frequencies = (tuple(frequencies) if frequencies
                   else DEFAULT_FREQUENCY_CYCLE)
    rng = random.Random(seed)
    tenants = []
    for i in range(count):
        tenants.append(TenantSpec(
            name=f"tenant{i:03d}",
            model=models[i % len(models)],
            frequency=frequencies[i % len(frequencies)],
            gpu_slot=i,
            model_seed=rng.randrange(1, 1 << 30)))
    return tenants


def place_on_cluster(cluster, spec: TenantSpec):
    """Map a tenant's flat ``gpu_slot`` onto (node, gpu) round-robin
    over every client GPU of *cluster* (Volta first, then Amperes)."""
    nodes = [cluster.volta] + list(cluster.amperes)
    slots = [(node, gpu) for node in nodes
             for gpu in range(len(node.gpus))]
    return slots[spec.gpu_slot % len(slots)]

"""Tenant registry: per-tenant byte quotas and bandwidth budgets.

One registry instance is shared by every daemon in the fleet (and
survives daemon restarts), so a tenant cannot dodge its quota by
spreading models over shards.  Two independent limits:

* **byte quota** — charged when a model is *created* (the daemon's
  persistent footprint is two version slots, so the charge is
  ``2 x model bytes``) and released when it is unregistered or
  migrated away from its charge.  Exceeding it raises
  :class:`~repro.errors.TenantQuotaExceeded`, which is permanent:
  retrying cannot help until capacity is freed.
* **bandwidth budget** — an integer token bucket (tokens are bytes)
  refilled at ``bandwidth_bps``.  A checkpoint is admitted whenever
  the bucket is positive and then debited its full size, so the bucket
  may go negative; that bounds the *average* rate for any checkpoint
  size without ever deadlocking a model larger than the burst.  A
  rejected dump raises :class:`~repro.errors.AdmissionReject` with a
  deterministic ``retry_after_ns`` telling the client exactly when the
  bucket goes positive again.

All arithmetic is integer nanoseconds/bytes — no float drift, so two
runs of the same schedule make bit-identical admit/reject decisions.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import AdmissionReject, ReproError, TenantQuotaExceeded

_NS_PER_S = 1_000_000_000


class _Tenant:
    __slots__ = ("name", "byte_quota", "bandwidth_bps", "burst_bytes",
                 "charged_bytes", "tokens", "last_refill_ns")

    def __init__(self, name: str, byte_quota: Optional[int],
                 bandwidth_bps: Optional[int],
                 burst_bytes: Optional[int]) -> None:
        self.name = name
        self.byte_quota = byte_quota
        self.bandwidth_bps = bandwidth_bps
        # Default burst: one second of budget, so the first dump of a
        # reasonably sized model is always admitted immediately.
        self.burst_bytes = (burst_bytes if burst_bytes is not None
                            else (bandwidth_bps or 0))
        self.charged_bytes = 0
        self.tokens = self.burst_bytes
        self.last_refill_ns = 0


class TenantRegistry:
    """Fleet-wide tenant table with byte + bandwidth accounting."""

    def __init__(self, obs=None) -> None:
        self._tenants: Dict[str, _Tenant] = {}
        # (tenant, model) -> charged bytes, so release is exact even if
        # the quota changed between create and unregister.
        self._charges: Dict[Tuple[str, str], int] = {}
        self.obs = obs

    # -- registration -----------------------------------------------------

    def register_tenant(self, name: str, byte_quota: Optional[int] = None,
                        bandwidth_bps: Optional[int] = None,
                        burst_bytes: Optional[int] = None) -> None:
        """Declare (or re-declare) a tenant and its limits.

        Re-declaring keeps the current charges and bucket level but
        applies the new limits; ``None`` means unlimited.
        """
        existing = self._tenants.get(name)
        if existing is None:
            self._tenants[name] = _Tenant(
                name, byte_quota, bandwidth_bps, burst_bytes)
            return
        existing.byte_quota = byte_quota
        existing.bandwidth_bps = bandwidth_bps
        if burst_bytes is not None:
            existing.burst_bytes = burst_bytes
            existing.tokens = min(existing.tokens, burst_bytes)
        elif bandwidth_bps is not None and existing.burst_bytes == 0:
            existing.burst_bytes = bandwidth_bps
            existing.tokens = bandwidth_bps

    def _tenant(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            # Unknown tenants are admitted unlimited: quotas are opt-in,
            # and the single-daemon legacy path never names a tenant.
            tenant = _Tenant(name, None, None, None)
            self._tenants[name] = tenant
        return tenant

    def known(self, name: str) -> bool:
        return name in self._tenants

    # -- byte quota -------------------------------------------------------

    def charge_bytes(self, tenant_name: str, model: str,
                     nbytes: int) -> None:
        """Charge a model's persistent footprint against the quota."""
        key = (tenant_name, model)
        if key in self._charges:
            raise ReproError(
                f"double charge for {tenant_name}/{model}")
        tenant = self._tenant(tenant_name)
        if (tenant.byte_quota is not None
                and tenant.charged_bytes + nbytes > tenant.byte_quota):
            self._count(f"fleet.quota.rejects.{tenant_name}")
            raise TenantQuotaExceeded(
                f"tenant {tenant_name!r}: {model} needs {nbytes} B but "
                f"only {tenant.byte_quota - tenant.charged_bytes} of "
                f"{tenant.byte_quota} B quota remain")
        tenant.charged_bytes += nbytes
        self._charges[key] = nbytes

    def release_bytes(self, tenant_name: str, model: str) -> int:
        """Release a model's charge (unregister / migration source)."""
        nbytes = self._charges.pop((tenant_name, model), 0)
        if nbytes:
            self._tenant(tenant_name).charged_bytes -= nbytes
        return nbytes

    def move_charge(self, tenant_name: str, model: str,
                    new_model: str) -> None:
        """Re-key a charge when a model is renamed (unused today, kept
        for symmetry with migration which keeps the same name)."""
        nbytes = self._charges.pop((tenant_name, model), None)
        if nbytes is not None:
            self._charges[(tenant_name, new_model)] = nbytes

    def charged(self, tenant_name: str) -> int:
        tenant = self._tenants.get(tenant_name)
        return tenant.charged_bytes if tenant else 0

    # -- bandwidth budget -------------------------------------------------

    def reserve_bandwidth(self, tenant_name: str, nbytes: int,
                          now_ns: int) -> None:
        """Debit *nbytes* from the token bucket or reject with a hint."""
        tenant = self._tenant(tenant_name)
        bps = tenant.bandwidth_bps
        if not bps:
            return
        elapsed = now_ns - tenant.last_refill_ns
        if elapsed > 0:
            refill = elapsed * bps // _NS_PER_S
            tenant.tokens = min(tenant.burst_bytes, tenant.tokens + refill)
            tenant.last_refill_ns = now_ns
        if tenant.tokens <= 0:
            # Exact integer time until the bucket is positive again.
            deficit = 1 - tenant.tokens
            retry_after = (deficit * _NS_PER_S + bps - 1) // bps
            self._count(f"fleet.bandwidth.rejects.{tenant_name}")
            raise AdmissionReject(
                f"tenant {tenant_name!r} over bandwidth budget "
                f"({bps} B/s), retry in {retry_after} ns",
                retry_after_ns=retry_after)
        tenant.tokens -= nbytes

    # -- introspection ----------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Optional[int]]]:
        return {
            name: {
                "byte_quota": t.byte_quota,
                "charged_bytes": t.charged_bytes,
                "bandwidth_bps": t.bandwidth_bps,
                "tokens": t.tokens,
            }
            for name, t in sorted(self._tenants.items())
        }

    def _count(self, name: str) -> None:
        if self.obs is not None:
            self.obs.metrics.counter(name).inc()

    def __repr__(self) -> str:
        return f"<TenantRegistry tenants={len(self._tenants)}>"

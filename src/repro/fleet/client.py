"""The fleet router: place, register, fail over, and migrate models.

A :class:`FleetClient` sits between the training jobs and an N-shard
:class:`~repro.harness.cluster.PaperCluster`.  It owns the placement
ring, resolves every ``(tenant, model)`` to a shard, registers through
that shard's :class:`~repro.core.client.PortusClient` (passing the
tenant name so the daemon can enforce quotas), and can live-migrate a
model between shards through the transfer engine.

Migration commit ordering (DESIGN.md §13; every window leak-only):

1. :func:`~repro.core.repack.migrate_model` copies the newest DONE
   version into a fresh index on the destination daemon and commits it
   (the source's CAS guard held throughout — no concurrent dump can
   flip the slot mid-copy);
2. the ring entry is pinned to the destination — lookups now route new
   attaches to the shard that provably holds the bytes;
3. the source copy is evicted (:func:`~repro.core.repack.evict_model`);
4. the live session, if any, is re-bound: transport torn down and
   re-attached against the destination daemon.

A crash between any two steps leaves at least one committed copy and
at worst leaks the other — never loses the model.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.core.repack import evict_model, migrate_model
from repro.errors import ReproError
from repro.fleet.ring import PlacementRing
from repro.fleet.workload import TenantSpec, place_on_cluster


class FleetClient:
    """Tenant-facing router over a sharded PaperCluster."""

    def __init__(self, cluster, ring: Optional[PlacementRing] = None,
                 vnodes: Optional[int] = None) -> None:
        self.cluster = cluster
        if ring is None:
            kwargs = {} if vnodes is None else {"vnodes": vnodes}
            ring = PlacementRing(
                (shard.name for shard in cluster.shards), **kwargs)
        self.ring = ring
        self.obs = cluster.obs
        #: (tenant, model name) -> live ModelSession.
        self._sessions: Dict[Tuple[str, str], object] = {}

    # -- placement --------------------------------------------------------

    def shard_of(self, tenant: str, model_name: str):
        """The StorageShard the ring places ``(tenant, model)`` on."""
        return self.cluster.shard_named(self.ring.lookup(tenant,
                                                         model_name))

    def session_of(self, tenant: str, model_name: str):
        return self._sessions.get((tenant, model_name))

    # -- registration -----------------------------------------------------

    def register(self, tenant: str, model, node=None, gpu: int = 0,
                 dedup: bool = False,
                 chunk_bytes: Optional[int] = None,
                 instance_name: Optional[str] = None,
                 model_seed: Optional[int] = None) -> Generator:
        """Process: place and register one model for *tenant*.

        *model* is a zoo name / ModelSpec / materialized ModelInstance
        (same contract as ``PaperCluster.portus_register``).  Placement
        keys on the registered instance name, so two tenants running
        the same architecture land independently.
        """
        from repro.dnn.tensor import ModelInstance

        if isinstance(model, ModelInstance):
            instance = model
        else:
            instance = self.cluster.materialize(
                model, node=node, gpu=gpu, seed=model_seed,
                instance_name=instance_name)
        name = instance.name
        shard = self.shard_of(tenant, name)
        client = self.cluster.portus_client(node, shard=shard.index)
        session = yield from client.register(instance, dedup=dedup,
                                             chunk_bytes=chunk_bytes,
                                             tenant=tenant)
        self._sessions[(tenant, name)] = session
        self.obs.metrics.counter(
            f"fleet.placements.{shard.name}").inc()
        return session

    def register_spec(self, spec: TenantSpec, dedup: bool = False
                      ) -> Generator:
        """Process: register one generated-workload tenant row."""
        node, gpu = place_on_cluster(self.cluster, spec)
        instance = self.cluster.materialize(
            spec.model, node=node, gpu=gpu, seed=spec.model_seed,
            instance_name=spec.instance_name)
        return (yield from self.register(spec.name, instance, node=node,
                                         dedup=dedup))

    # -- migration --------------------------------------------------------

    def migrate(self, tenant: str, model_name: str,
                dst_shard_name: str) -> Generator:
        """Process: move a model to *dst_shard_name*, live.

        Returns ``(step, bytes_moved)`` of the migrated checkpoint.
        The model's session (if this router registered one) ends the
        call attached to the destination daemon.
        """
        src_shard = self.shard_of(tenant, model_name)
        dst_shard = self.cluster.shard_named(dst_shard_name)
        if dst_shard.name == src_shard.name:
            raise ReproError(
                f"{tenant}/{model_name} already lives on "
                f"{dst_shard.name}")
        step, moved = yield from migrate_model(
            self.cluster.env, src_shard.daemon, dst_shard.daemon,
            model_name, obs=self.obs)
        # The destination holds a committed copy: flip the ring pin
        # FIRST so every new lookup routes to bytes that exist, then
        # drop the source copy.
        self.ring.assign(tenant, model_name, dst_shard.name)
        evict_model(src_shard.daemon, model_name)
        session = self._sessions.get((tenant, model_name))
        if session is not None:
            old_client = session.client
            new_client = self.cluster.portus_client(
                old_client.node, shard=dst_shard.index)
            if session in old_client.sessions:
                old_client.sessions.remove(session)
            session.client = new_client
            new_client.sessions.append(session)
            session._teardown_transport()
            yield from session._ensure_attached()
        self.obs.metrics.counter(
            f"fleet.migrations.{src_shard.name}->{dst_shard.name}").inc()
        return step, moved

    # -- introspection ----------------------------------------------------

    def placements(self) -> Dict[str, List[str]]:
        """shard name -> sorted list of "tenant/model" keys it owns."""
        result: Dict[str, List[str]] = {
            shard.name: [] for shard in self.cluster.shards}
        for (tenant, model), _session in sorted(self._sessions.items()):
            result[self.ring.lookup(tenant, model)].append(
                f"{tenant}/{model}")
        return result

    def __repr__(self) -> str:
        return (f"<FleetClient shards={len(self.cluster.shards)} "
                f"sessions={len(self._sessions)}>")

"""The fleet router: place, register, fail over, and migrate models.

A :class:`FleetClient` sits between the training jobs and an N-shard
:class:`~repro.harness.cluster.PaperCluster`.  It owns the placement
ring, resolves every ``(tenant, model)`` to a shard, registers through
that shard's :class:`~repro.core.client.PortusClient` (passing the
tenant name so the daemon can enforce quotas), and can live-migrate a
model between shards through the transfer engine.

Migration commit ordering (DESIGN.md §13; every window leak-only):

1. :func:`~repro.core.repack.migrate_model` copies the newest DONE
   version into a fresh index on the destination daemon and commits it
   (the source's CAS guard held throughout — no concurrent dump can
   flip the slot mid-copy);
2. the ring entry is pinned to the destination — lookups now route new
   attaches to the shard that provably holds the bytes;
3. the source copy is evicted (:func:`~repro.core.repack.evict_model`);
4. the live session, if any, is re-bound: transport torn down and
   re-attached against the destination daemon.

A crash between any two steps leaves at least one committed copy and
at worst leaks the other — never loses the model.  Step 2 is the
commit point: once the ring routes to the destination, a failure in
steps 3–4 raises :class:`~repro.errors.MigrationIncomplete` naming
what leaked, and never unwinds the flip.

Parallel groups ride the same machinery with one twist: every member
of a group is placed through the *group's* ring key, so the whole
group lives on one shard and migrates as a unit
(:meth:`FleetClient.migrate_group`).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.core.consistency import valid_checkpoint
from repro.core.group import register_group as bind_group
from repro.core.repack import evict_model, migrate_model
from repro.errors import (DedupMigrationUnsupported, GroupError,
                          MigrationIncomplete, ReproError)
from repro.fleet.ring import PlacementRing
from repro.fleet.workload import TenantSpec, place_on_cluster


class FleetClient:
    """Tenant-facing router over a sharded PaperCluster."""

    def __init__(self, cluster, ring: Optional[PlacementRing] = None,
                 vnodes: Optional[int] = None) -> None:
        self.cluster = cluster
        if ring is None:
            kwargs = {} if vnodes is None else {"vnodes": vnodes}
            ring = PlacementRing(
                (shard.name for shard in cluster.shards), **kwargs)
        self.ring = ring
        self.obs = cluster.obs
        #: (tenant, model name) -> live ModelSession.
        self._sessions: Dict[Tuple[str, str], object] = {}
        #: (tenant, group name) -> live GroupSession.
        self._groups: Dict[Tuple[str, str], object] = {}

    # -- placement --------------------------------------------------------

    def shard_of(self, tenant: str, model_name: str):
        """The StorageShard the ring places ``(tenant, model)`` on."""
        return self.cluster.shard_named(self.ring.lookup(tenant,
                                                         model_name))

    def session_of(self, tenant: str, model_name: str):
        return self._sessions.get((tenant, model_name))

    # -- registration -----------------------------------------------------

    def register(self, tenant: str, model, node=None, gpu: int = 0,
                 dedup: bool = False,
                 chunk_bytes: Optional[int] = None,
                 instance_name: Optional[str] = None,
                 model_seed: Optional[int] = None) -> Generator:
        """Process: place and register one model for *tenant*.

        *model* is a zoo name / ModelSpec / materialized ModelInstance
        (same contract as ``PaperCluster.portus_register``).  Placement
        keys on the registered instance name, so two tenants running
        the same architecture land independently.
        """
        from repro.dnn.tensor import ModelInstance

        if isinstance(model, ModelInstance):
            instance = model
        else:
            instance = self.cluster.materialize(
                model, node=node, gpu=gpu, seed=model_seed,
                instance_name=instance_name)
        name = instance.name
        shard = self.shard_of(tenant, name)
        client = self.cluster.portus_client(node, shard=shard.index)
        session = yield from client.register(instance, dedup=dedup,
                                             chunk_bytes=chunk_bytes,
                                             tenant=tenant)
        self._sessions[(tenant, name)] = session
        self.obs.metrics.counter(
            f"fleet.placements.{shard.name}").inc()
        return session

    def register_spec(self, spec: TenantSpec, dedup: bool = False
                      ) -> Generator:
        """Process: register one generated-workload tenant row."""
        node, gpu = place_on_cluster(self.cluster, spec)
        instance = self.cluster.materialize(
            spec.model, node=node, gpu=gpu, seed=spec.model_seed,
            instance_name=spec.instance_name)
        return (yield from self.register(spec.name, instance, node=node,
                                         dedup=dedup))

    # -- migration --------------------------------------------------------

    def migrate(self, tenant: str, model_name: str,
                dst_shard_name: str) -> Generator:
        """Process: move a model to *dst_shard_name*, live.

        Returns ``(step, bytes_moved)`` of the migrated checkpoint.
        The model's session (if this router registered one) ends the
        call attached to the destination daemon.

        The ring flip is the commit point.  Failures before it unwind
        cleanly (the source keeps the model); failures after it are
        leak-only — the flip is never undone, the cleanup that still
        owes is finished as far as possible, and the call raises
        :class:`~repro.errors.MigrationIncomplete` naming what leaked.
        """
        src_shard = self.shard_of(tenant, model_name)
        dst_shard = self.cluster.shard_named(dst_shard_name)
        if dst_shard.name == src_shard.name:
            raise ReproError(
                f"{tenant}/{model_name} already lives on "
                f"{dst_shard.name}")
        step, moved = yield from migrate_model(
            self.cluster.env, src_shard.daemon, dst_shard.daemon,
            model_name, obs=self.obs)
        # The destination holds a committed copy: flip the ring pin
        # FIRST so every new lookup routes to bytes that exist, then
        # drop the source copy.
        self.ring.assign(tenant, model_name, dst_shard.name)
        leaked = yield from self._finish_migration(
            tenant, model_name, src_shard, dst_shard)
        self.obs.metrics.counter(
            f"fleet.migrations.{src_shard.name}->{dst_shard.name}").inc()
        if leaked:
            raise MigrationIncomplete(
                f"{tenant}/{model_name}: committed to {dst_shard.name} "
                f"(ring flipped, step {step}) but cleanup failed: "
                + "; ".join(detail for _, detail in leaked),
                leaked=[what for what, _ in leaked])
        return step, moved

    def _finish_migration(self, tenant: str, model_name: str,
                          src_shard, dst_shard) -> Generator:
        """Process: post-commit-point cleanup — evict the source copy
        and rebind the live session.  Never raises; returns a list of
        ``(what, detail)`` leaks for the caller's MigrationIncomplete.
        The session, if any, is bound to the destination even when the
        re-attach fails (its retry path attaches on next use) — binding
        it back to the source would route writes to evicted bytes."""
        leaked: List[Tuple[str, str]] = []
        try:
            evict_model(src_shard.daemon, model_name)
        except ReproError as exc:
            leaked.append((f"source-copy:{src_shard.name}/{model_name}",
                           f"evict: {exc}"))
        session = self._sessions.get((tenant, model_name))
        if session is not None:
            old_client = session.client
            new_client = self.cluster.portus_client(
                old_client.node, shard=dst_shard.index)
            if session in old_client.sessions:
                old_client.sessions.remove(session)
            session.client = new_client
            new_client.sessions.append(session)
            session._teardown_transport()
            try:
                yield from session._ensure_attached()
            except ReproError as exc:
                leaked.append((f"session:{tenant}/{model_name}",
                               f"re-attach: {exc}"))
        return leaked

    # -- groups -----------------------------------------------------------

    def register_group(self, tenant: str, group_name: str, layout,
                       instances, node=None) -> Generator:
        """Process: place and register a whole parallel group.

        Every member is pinned to the shard the ring picks for the
        *group* key — one key, one shard, so the group's commit record
        and all its member indexes share a pool and migrate together.
        *instances* maps member name -> materialized ModelInstance
        covering exactly ``layout.members``.
        """
        if set(instances) != set(layout.members):
            raise GroupError(
                f"group {group_name!r}: instances do not match the "
                f"layout's members")
        shard = self.cluster.shard_named(
            self.ring.lookup(tenant, group_name))
        for member in layout.members:
            self.ring.assign(tenant, member, shard.name)
        client = self.cluster.portus_client(node, shard=shard.index)
        sessions = []
        for member in layout.members:
            session = yield from client.register(instances[member],
                                                 tenant=tenant)
            self._sessions[(tenant, member)] = session
            sessions.append(session)
        group = yield from bind_group(client, group_name, layout,
                                      sessions)
        self._groups[(tenant, group_name)] = group
        self.obs.metrics.counter(
            f"fleet.group_placements.{shard.name}").inc()
        return group

    def group_of(self, tenant: str, group_name: str):
        return self._groups.get((tenant, group_name))

    def migrate_group(self, tenant: str, group_name: str,
                      dst_shard_name: str) -> Generator:
        """Process: move a whole group to *dst_shard_name*, live.

        Refusals happen before anything moves: any deduplicated member
        (including a mixed dedup/non-dedup group) raises
        :class:`~repro.errors.DedupMigrationUnsupported`, and a torn
        group (a member whose newest DONE step is not the committed
        step — fsck has not repaired it yet) raises
        :class:`~repro.errors.GroupError`.

        Ordering: every member copies and commits on the destination,
        the group record is re-created and committed there at the same
        step, and only then does the ring flip (group key + every
        member pin) — the commit point.  Post-flip failures follow the
        single-model contract: leak-only, MigrationIncomplete.
        """
        src_shard = self.cluster.shard_named(
            self.ring.lookup(tenant, group_name))
        dst_shard = self.cluster.shard_named(dst_shard_name)
        if dst_shard.name == src_shard.name:
            raise ReproError(
                f"{tenant}/{group_name} already lives on "
                f"{dst_shard.name}")
        record = src_shard.daemon.groups.lookup(group_name)
        layout = record.layout()
        members = list(layout.members)
        dedup_members = []
        for member in members:
            entry = src_shard.daemon.model_map.get(member)
            if entry is None:
                raise GroupError(
                    f"group {group_name!r}: member {member!r} is not on "
                    f"{src_shard.name}")
            if entry.meta.dedup:
                dedup_members.append(member)
            elif record.committed_step > 0:
                _, newest = valid_checkpoint(entry.meta)
                if newest != record.committed_step:
                    raise GroupError(
                        f"group {group_name!r}: member {member!r} newest "
                        f"DONE step {newest} != committed "
                        f"{record.committed_step}; repair the pool "
                        f"before migrating")
        if dedup_members:
            raise DedupMigrationUnsupported(
                f"group {group_name!r}: members "
                f"{dedup_members[:4]} are deduplicated (chunk store is "
                f"pool-local); groups migrate all-or-nothing")
        moved_total = 0
        for member in members:
            _, moved = yield from migrate_model(
                self.cluster.env, src_shard.daemon, dst_shard.daemon,
                member, obs=self.obs)
            moved_total += moved
        dst_record = dst_shard.daemon.groups.register(
            group_name, record.layout_blob)
        if record.committed_step > dst_record.committed_step:
            dst_record.commit(record.committed_step)
        # Commit point: one flip for the group key, then every member
        # pin — lookups of any member now route to the shard that
        # provably holds the full group.
        self.ring.assign(tenant, group_name, dst_shard.name)
        for member in members:
            self.ring.assign(tenant, member, dst_shard.name)
        leaked: List[Tuple[str, str]] = []
        for member in members:
            leaked += yield from self._finish_migration(
                tenant, member, src_shard, dst_shard)
        try:
            src_shard.daemon.groups.remove(group_name)
        except ReproError as exc:
            leaked.append((f"group-record:{src_shard.name}/{group_name}",
                           f"remove: {exc}"))
        group = self._groups.get((tenant, group_name))
        if group is not None:
            group.client = self.cluster.portus_client(
                group.client.node, shard=dst_shard.index)
        self.obs.metrics.counter(
            f"fleet.group_migrations.{src_shard.name}->"
            f"{dst_shard.name}").inc()
        if leaked:
            raise MigrationIncomplete(
                f"{tenant}/{group_name}: group committed to "
                f"{dst_shard.name} (ring flipped, step "
                f"{record.committed_step}) but cleanup failed: "
                + "; ".join(detail for _, detail in leaked),
                leaked=[what for what, _ in leaked])
        return record.committed_step, moved_total

    # -- introspection ----------------------------------------------------

    def placements(self) -> Dict[str, List[str]]:
        """shard name -> sorted list of "tenant/model" keys it owns."""
        result: Dict[str, List[str]] = {
            shard.name: [] for shard in self.cluster.shards}
        for (tenant, model), _session in sorted(self._sessions.items()):
            result[self.ring.lookup(tenant, model)].append(
                f"{tenant}/{model}")
        return result

    def __repr__(self) -> str:
        return (f"<FleetClient shards={len(self.cluster.shards)} "
                f"sessions={len(self._sessions)}>")

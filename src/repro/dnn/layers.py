"""Parameter-tensor builders for common layer types.

Each helper returns the :class:`~repro.dnn.tensor.TensorSpec` list that the
corresponding PyTorch module contributes to ``named_parameters()`` — the
exact granularity Portus registers memory regions at.  Composing these
reproduces the Table II models' layer counts and parameter totals.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.dnn.dtypes import DType, float32
from repro.dnn.tensor import TensorSpec


def conv2d(name: str, cin: int, cout: int, kernel: int,
           bias: bool = True, groups: int = 1,
           dtype: DType = float32) -> List[TensorSpec]:
    """A 2D convolution: weight [cout, cin/groups, k, k] (+ bias)."""
    specs = [TensorSpec(f"{name}.weight",
                        (cout, cin // groups, kernel, kernel), dtype)]
    if bias:
        specs.append(TensorSpec(f"{name}.bias", (cout,), dtype))
    return specs


def batchnorm2d(name: str, channels: int,
                dtype: DType = float32) -> List[TensorSpec]:
    """BatchNorm affine parameters (running stats are buffers, not params)."""
    return [TensorSpec(f"{name}.weight", (channels,), dtype),
            TensorSpec(f"{name}.bias", (channels,), dtype)]


def layernorm(name: str, width: int,
              dtype: DType = float32) -> List[TensorSpec]:
    return [TensorSpec(f"{name}.weight", (width,), dtype),
            TensorSpec(f"{name}.bias", (width,), dtype)]


def linear(name: str, fin: int, fout: int, bias: bool = True,
           dtype: DType = float32) -> List[TensorSpec]:
    specs = [TensorSpec(f"{name}.weight", (fout, fin), dtype)]
    if bias:
        specs.append(TensorSpec(f"{name}.bias", (fout,), dtype))
    return specs


def embedding(name: str, rows: int, width: int,
              dtype: DType = float32) -> List[TensorSpec]:
    return [TensorSpec(f"{name}.weight", (rows, width), dtype)]


def multihead_attention(name: str, width: int,
                        dtype: DType = float32) -> List[TensorSpec]:
    """torch.nn.MultiheadAttention: fused in-proj + out-proj."""
    return [
        TensorSpec(f"{name}.in_proj_weight", (3 * width, width), dtype),
        TensorSpec(f"{name}.in_proj_bias", (3 * width,), dtype),
        *linear(f"{name}.out_proj", width, width, dtype=dtype),
    ]


def mlp_block(name: str, width: int, hidden: int,
              dtype: DType = float32) -> List[TensorSpec]:
    """Transformer MLP: two linears with biases."""
    return [*linear(f"{name}.0", width, hidden, dtype=dtype),
            *linear(f"{name}.3", hidden, width, dtype=dtype)]


def parameter(name: str, shape: Tuple[int, ...],
              dtype: DType = float32) -> List[TensorSpec]:
    """A bare learnable tensor (class token, position embedding, ...)."""
    return [TensorSpec(name, shape, dtype)]


def total_params(specs: List[TensorSpec]) -> int:
    return sum(spec.numel for spec in specs)


def total_bytes(specs: List[TensorSpec]) -> int:
    return sum(spec.size_bytes for spec in specs)

"""Tensor element types."""

from __future__ import annotations


class DType:
    """An element type with a stable wire name and item size."""

    _registry = {}

    def __init__(self, name: str, itemsize: int) -> None:
        self.name = name
        self.itemsize = itemsize
        DType._registry[name] = self

    @classmethod
    def by_name(cls, name: str) -> "DType":
        try:
            return cls._registry[name]
        except KeyError:
            raise ValueError(f"unknown dtype {name!r}") from None

    def __repr__(self) -> str:
        return f"<dtype {self.name}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)


float64 = DType("float64", 8)
float32 = DType("float32", 4)
float16 = DType("float16", 2)
bfloat16 = DType("bfloat16", 2)
int64 = DType("int64", 8)
int32 = DType("int32", 4)
int8 = DType("int8", 1)

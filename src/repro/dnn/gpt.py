"""Megatron-style GPT configurations and tensor/pipeline sharding.

The paper scales GPT from 1.5 B to 22.4 B parameters on 16 A40s (tensor
parallel within a node, pipeline parallel across the two nodes).  This
module builds the full-model tensor list for a config and splits it into
per-rank shards the way Megatron-LM does:

* column-parallel: QKV projection and MLP fc1 split on the output dim;
* row-parallel: attention output projection and MLP fc2 split on the
  input dim;
* vocab-parallel embedding split on the vocab dim;
* layer norms replicated on every tensor-parallel rank;
* transformer layers divided contiguously across pipeline stages, with
  the embeddings on the first stage and the final norm on the last.

Every shard is a plain :class:`~repro.dnn.models.ModelSpec`, so a shard
checkpoint is just another model to Portus — which is precisely the
paper's "each MIndex maps to a model shard on a specific GPU" design.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dnn.layers import layernorm, linear, parameter
from repro.dnn.models import ModelSpec
from repro.dnn.tensor import TensorSpec
from repro.units import msecs


class GptConfig:
    """One Megatron GPT size point."""

    def __init__(self, name: str, hidden: int, layers: int, heads: int,
                 seq_length: int = 2048, vocab_size: int = 50304) -> None:
        if hidden % heads:
            raise ValueError(f"{name}: hidden {hidden} not divisible by "
                             f"heads {heads}")
        self.name = name
        self.hidden = hidden
        self.layers = layers
        self.heads = heads
        self.seq_length = seq_length
        self.vocab_size = vocab_size

    def param_count(self) -> int:
        h, layers = self.hidden, self.layers
        per_layer = 12 * h * h + 13 * h
        return (layers * per_layer + self.vocab_size * h
                + self.seq_length * h + 2 * h)

    #: Per-iteration wall time scales ~linearly with parameters at fixed
    #: cluster size; anchor: the paper's Fig. 2 puts the 22.4 B model at a
    #: 41 % checkpoint share with a ~120 s checkpoint per 100 iterations,
    #: implying ~1.78 s per iteration => ~79.5 ms per billion parameters.
    NS_PER_BILLION_PARAMS = msecs(79.5)

    def iteration_ns(self) -> int:
        return int(self.param_count() / 1e9 * self.NS_PER_BILLION_PARAMS)

    def __repr__(self) -> str:
        return f"<GptConfig {self.name} H={self.hidden} L={self.layers} " \
               f"params={self.param_count() / 1e9:.2f}B>"


#: The evaluation's size sweep (Fig. 14).  Named by nominal billions.
GPT_CONFIGS: Dict[str, GptConfig] = {
    "gpt-1.5b": GptConfig("gpt-1.5b", hidden=1600, layers=48, heads=25,
                          seq_length=1024),
    "gpt-4.2b": GptConfig("gpt-4.2b", hidden=3072, layers=36, heads=24),
    "gpt-8.3b": GptConfig("gpt-8.3b", hidden=4096, layers=40, heads=32),
    "gpt-10.4b": GptConfig("gpt-10.4b", hidden=4608, layers=40, heads=36),
    "gpt-12.9b": GptConfig("gpt-12.9b", hidden=5120, layers=40, heads=40),
    "gpt-22.4b": GptConfig("gpt-22.4b", hidden=6144, layers=49, heads=48),
}


def tiny_gpt(name: str = "gpt-tiny", hidden: int = 64, layers: int = 3,
             heads: int = 8, seq_length: int = 32,
             vocab_size: int = 64) -> GptConfig:
    """A deliberately small config for tests and resharding checks.

    Resharding proofs materialize whole global tensors to compare bytes,
    so they need a model whose tensors fit comfortably in memory while
    still exercising every partition kind (column, row, vocab-parallel,
    replicated) at TP degrees up to 8.
    """
    return GptConfig(name, hidden=hidden, layers=layers, heads=heads,
                     seq_length=seq_length, vocab_size=vocab_size)


def _layer_specs(prefix: str, hidden: int, tp: int) -> List[TensorSpec]:
    """One transformer layer's tensors for a tensor-parallel rank."""
    specs: List[TensorSpec] = []
    specs += layernorm(f"{prefix}.input_layernorm", hidden)
    specs += linear(f"{prefix}.attention.query_key_value", hidden,
                    3 * hidden // tp)
    specs += [TensorSpec(f"{prefix}.attention.dense.weight",
                         (hidden, hidden // tp)),
              TensorSpec(f"{prefix}.attention.dense.bias", (hidden,))]
    specs += layernorm(f"{prefix}.post_attention_layernorm", hidden)
    specs += linear(f"{prefix}.mlp.dense_h_to_4h", hidden,
                    4 * hidden // tp)
    specs += [TensorSpec(f"{prefix}.mlp.dense_4h_to_h.weight",
                         (hidden, 4 * hidden // tp)),
              TensorSpec(f"{prefix}.mlp.dense_4h_to_h.bias", (hidden,))]
    return specs


def build_gpt(config: GptConfig) -> ModelSpec:
    """The unsharded model (tp=1, one pipeline stage)."""
    shards = shard_gpt(config, tensor_parallel=1, pipeline_parallel=1)
    (shard,) = shards
    return ModelSpec(config.name, shard.tensors,
                     iteration_ns=config.iteration_ns())


def shard_gpt(config: GptConfig, tensor_parallel: int,
              pipeline_parallel: int) -> List[ModelSpec]:
    """Per-rank shard specs, ordered pipeline-major then tensor rank.

    The returned list has ``pipeline_parallel * tensor_parallel`` entries;
    entry ``p * tp + t`` is pipeline stage *p*, tensor rank *t* — matching
    Megatron's ``mp_rank_{t:02d}_{p:03d}`` checkpoint naming.
    """
    if config.hidden % tensor_parallel:
        raise ValueError(
            f"hidden {config.hidden} not divisible by tp={tensor_parallel}")
    if config.vocab_size % tensor_parallel:
        raise ValueError(
            f"vocab {config.vocab_size} not divisible by tp={tensor_parallel}")
    layers_per_stage = config.layers // pipeline_parallel
    remainder = config.layers % pipeline_parallel
    shards: List[ModelSpec] = []
    layer_cursor = 0
    for stage in range(pipeline_parallel):
        stage_layers = layers_per_stage + (1 if stage < remainder else 0)
        for rank in range(tensor_parallel):
            specs: List[TensorSpec] = []
            if stage == 0:
                specs += parameter(
                    "embedding.word_embeddings.weight",
                    (config.vocab_size // tensor_parallel, config.hidden))
                specs += parameter(
                    "embedding.position_embeddings.weight",
                    (config.seq_length, config.hidden))
            for layer in range(layer_cursor, layer_cursor + stage_layers):
                specs += _layer_specs(f"language_model.layers.{layer}",
                                      config.hidden, tensor_parallel)
            if stage == pipeline_parallel - 1:
                specs += layernorm("language_model.final_layernorm",
                                   config.hidden)
            name = f"{config.name}/mp_rank_{rank:02d}_{stage:03d}"
            shards.append(ModelSpec(name, specs,
                                    iteration_ns=config.iteration_ns()))
        layer_cursor += stage_layers
    return shards


def total_checkpoint_bytes(config: GptConfig, tensor_parallel: int,
                           pipeline_parallel: int) -> int:
    """Aggregate checkpoint volume across every shard."""
    return sum(shard.total_bytes
               for shard in shard_gpt(config, tensor_parallel,
                                      pipeline_parallel))

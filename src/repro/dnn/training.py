"""The training loop: forward / backward / update with checkpoint hooks.

One :class:`TrainingJob` drives one or many ranks (model shards on their
GPUs) in lockstep, which is how synchronous data/model-parallel training
behaves from the checkpointing system's point of view.  Parameters are
immutable during F and B and mutate at the start of U — the property
every asynchronous checkpointing scheme in the paper leans on — so the
loop exposes two hook points:

* ``after_backward``: the last moment a consistent snapshot of the
  *current* step can still be taken or awaited; anything still reading
  GPU tensors after this point will observe the update (and the RDMA
  layer will hand it torn content).
* ``after_update``: where checkpoint policies trigger new checkpoints.

GPU busy time is recorded per rank; stalls inside hooks show up as idle —
that is the Fig. 16 utilization signal.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple

from repro.dnn.tensor import ModelInstance
from repro.metrics import IntervalRecorder
from repro.sim import Environment


class CheckpointHook:
    """Base hook: every method is a no-op generator; override what you need."""

    def on_job_start(self, job: "TrainingJob") -> Generator:
        return
        yield  # pragma: no cover

    def after_backward(self, job: "TrainingJob",
                       iteration: int) -> Generator:
        return
        yield  # pragma: no cover

    def after_update(self, job: "TrainingJob", iteration: int) -> Generator:
        return
        yield  # pragma: no cover

    def on_job_end(self, job: "TrainingJob") -> Generator:
        return
        yield  # pragma: no cover


class TrainingRank:
    """One model shard on one GPU, with its utilization recorder."""

    def __init__(self, model: ModelInstance) -> None:
        self.model = model
        device = model.tensors[0].device if model.tensors else None
        self.device = device
        self.recorder = IntervalRecorder(name=model.name)


class TrainingJob:
    """Synchronous training of one or more ranks with one hook."""

    def __init__(self, env: Environment, models: Sequence[ModelInstance],
                 iteration_ns: int,
                 phase_fractions: Tuple[float, float, float] = (0.35, 0.45,
                                                                0.20),
                 hook: Optional[CheckpointHook] = None,
                 name: str = "job") -> None:
        if not models:
            raise ValueError("a training job needs at least one rank")
        if abs(sum(phase_fractions) - 1.0) > 1e-6:
            raise ValueError(f"phase fractions must sum to 1, "
                             f"got {phase_fractions}")
        if iteration_ns <= 0:
            raise ValueError(f"iteration time must be positive, "
                             f"got {iteration_ns}")
        self.env = env
        self.ranks = [TrainingRank(model) for model in models]
        self.iteration_ns = iteration_ns
        forward, backward, update = phase_fractions
        self.forward_ns = int(iteration_ns * forward)
        self.backward_ns = int(iteration_ns * backward)
        self.update_ns = iteration_ns - self.forward_ns - self.backward_ns
        self.hook = hook or CheckpointHook()
        self.name = name
        self.iterations_done = 0
        self.started_at: Optional[int] = None
        self.finished_at: Optional[int] = None

    @property
    def models(self) -> List[ModelInstance]:
        return [rank.model for rank in self.ranks]

    @property
    def recorders(self) -> List[IntervalRecorder]:
        return [rank.recorder for rank in self.ranks]

    def _busy(self, duration_ns: int) -> Generator:
        for rank in self.ranks:
            rank.recorder.begin(self.env.now)
        yield self.env.timeout(duration_ns)
        for rank in self.ranks:
            rank.recorder.end(self.env.now)

    def run(self, iterations: int) -> Generator:
        """Process: train for *iterations* steps."""
        self.started_at = self.env.now
        yield from self.hook.on_job_start(self)
        for iteration in range(1, iterations + 1):
            # Forward + backward: parameters are stable.
            yield from self._busy(self.forward_ns + self.backward_ns)
            # Consistency barrier: snapshots of this step end here.
            yield from self.hook.after_backward(self, iteration)
            # Update: every parameter is rewritten at the start of U.
            for rank in self.ranks:
                rank.model.update_step(iteration)
            yield from self._busy(self.update_ns)
            self.iterations_done = iteration
            yield from self.hook.after_update(self, iteration)
        yield from self.hook.on_job_end(self)
        self.finished_at = self.env.now

    def run_for(self, duration_ns: int) -> Generator:
        """Process: train until the clock passes ``start + duration_ns``.

        Used by the utilization-trace experiment (Fig. 16), where the
        question is "how many iterations fit in 500 s", not "how long do
        N iterations take".
        """
        self.started_at = self.env.now
        deadline = self.env.now + duration_ns
        yield from self.hook.on_job_start(self)
        iteration = 0
        while self.env.now < deadline:
            iteration += 1
            yield from self._busy(self.forward_ns + self.backward_ns)
            yield from self.hook.after_backward(self, iteration)
            for rank in self.ranks:
                rank.model.update_step(iteration)
            yield from self._busy(self.update_ns)
            self.iterations_done = iteration
            yield from self.hook.after_update(self, iteration)
        yield from self.hook.on_job_end(self)
        self.finished_at = self.env.now

    @property
    def elapsed_ns(self) -> int:
        if self.started_at is None or self.finished_at is None:
            raise ValueError("job has not finished")
        return self.finished_at - self.started_at

    def throughput_iters_per_sec(self) -> float:
        """Completed iterations per second of wall clock."""
        return self.iterations_done / (self.elapsed_ns / 1e9)

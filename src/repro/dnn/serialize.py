"""torch.save-like checkpoint serialization (and its cost model).

The on-disk format mirrors the structure that matters: a real, parseable
metadata header (JSON: per-tensor name/dtype/shape/offset) followed by the
raw tensor payloads.  The header bytes are genuine — Portusctl dumps and
the restore path parse them — while payloads stay virtual content.

The *time* serialization takes is the thing the paper eliminates; it is
charged by the caller via :func:`serialization_time_ns`, calibrated from
Table I: pickling runs at ~1.73 GB/s on one core, plus a per-tensor
object-graph cost.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Tuple

from repro.dnn.dtypes import DType
from repro.dnn.tensor import Tensor, TensorSpec
from repro.hw.content import ByteContent, CompositeContent, Content
from repro.units import gbytes, transfer_time_ns, usecs

_MAGIC = b"RPTCKPT1"
_LEN = struct.Struct("<Q")

#: Single-core pickle throughput over tensor payloads (Table I anchor:
#: serialization is 41.7 % of a BERT checkpoint).
SERIALIZATION_BPS = gbytes(1.73)
#: Unpickling is lighter: metadata parse + storage rebuild.
DESERIALIZATION_BPS = gbytes(6.7)
#: Per-tensor object-graph walk (pickler memoization, storage headers).
PER_TENSOR_NS = usecs(25)


def serialization_time_ns(total_bytes: int, tensor_count: int) -> int:
    """CPU time to serialize a state dict of this shape."""
    return (transfer_time_ns(total_bytes, SERIALIZATION_BPS)
            + tensor_count * PER_TENSOR_NS)


def deserialization_time_ns(total_bytes: int, tensor_count: int) -> int:
    """CPU time to rebuild a state dict from checkpoint bytes."""
    return (transfer_time_ns(total_bytes, DESERIALIZATION_BPS)
            + tensor_count * PER_TENSOR_NS)


def _header_entry(spec: TensorSpec, offset: int) -> Dict:
    return {"name": spec.name, "dtype": spec.dtype.name,
            "shape": list(spec.shape), "size": spec.size_bytes,
            "offset": offset}


def serialize_entries(entries: List[Tuple[TensorSpec, Content]]) -> Content:
    """Build a checkpoint file image from ``(spec, content)`` pairs."""
    header_entries = []
    offset = 0
    for spec, _content in entries:
        header_entries.append(_header_entry(spec, offset))
        offset += spec.size_bytes
    header = json.dumps({"tensors": header_entries}).encode("utf-8")
    parts: List[Content] = [
        ByteContent(_MAGIC + _LEN.pack(len(header)) + header)]
    parts += [content for _spec, content in entries]
    return CompositeContent(parts)


def serialize_state_dict(tensors: List[Tensor]) -> Content:
    """Build the checkpoint file image for a list of live tensors."""
    return serialize_entries([(t.spec, t.content()) for t in tensors])


def file_size_for(specs: List[TensorSpec]) -> int:
    """Exact serialized size for a spec list (header + payloads)."""
    entries = []
    offset = 0
    for spec in specs:
        entries.append(_header_entry(spec, offset))
        offset += spec.size_bytes
    header = json.dumps({"tensors": entries}).encode("utf-8")
    return len(_MAGIC) + _LEN.size + len(header) + offset


def deserialize_state_dict(content: Content) -> Dict[str, Tuple[TensorSpec,
                                                                Content]]:
    """Parse a checkpoint image back into per-tensor specs and payloads."""
    prefix = content.slice(0, len(_MAGIC) + _LEN.size).to_bytes()
    if prefix[:len(_MAGIC)] != _MAGIC:
        raise ValueError("not a checkpoint file (bad magic)")
    (header_len,) = _LEN.unpack(prefix[len(_MAGIC):])
    header_start = len(_MAGIC) + _LEN.size
    header = json.loads(
        content.slice(header_start, header_len).to_bytes().decode("utf-8"))
    payload_base = header_start + header_len
    out: Dict[str, Tuple[TensorSpec, Content]] = {}
    for entry in header["tensors"]:
        spec = TensorSpec(entry["name"], tuple(entry["shape"]),
                          DType.by_name(entry["dtype"]))
        payload = content.slice(payload_base + entry["offset"],
                                entry["size"])
        out[spec.name] = (spec, payload)
    return out

"""Tensors and model instances resident on simulated devices.

A :class:`TensorSpec` is pure metadata (name, shape, dtype) — the unit
the Portus MIndex records.  A :class:`Tensor` is a spec bound to a device
allocation whose content is a deterministic pattern derived from
``(model seed, tensor name, step)``, so after any checkpoint/restore
round trip the restored bytes can be verified exactly, at any model
scale, without materializing them.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dnn.dtypes import DType, float32
from repro.hw.content import Content, PatternContent
from repro.hw.device import Allocation, MemoryDevice


class TensorSpec:
    """Name, shape, dtype: everything the index needs to describe a tensor."""

    def __init__(self, name: str, shape: Tuple[int, ...],
                 dtype: DType = float32) -> None:
        if not name:
            raise ValueError("tensor name must be non-empty")
        if any(dim <= 0 for dim in shape):
            raise ValueError(f"{name}: non-positive dimension in {shape}")
        self.name = name
        self.shape = tuple(int(d) for d in shape)
        self.dtype = dtype

    @property
    def numel(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    @property
    def size_bytes(self) -> int:
        return self.numel * self.dtype.itemsize

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TensorSpec) and other.name == self.name
                and other.shape == self.shape and other.dtype == self.dtype)

    def __hash__(self) -> int:
        return hash((self.name, self.shape, self.dtype))

    def __repr__(self) -> str:
        return f"<TensorSpec {self.name} {self.shape} {self.dtype.name}>"


def tensor_seed(model_seed: int, tensor_name: str, step: int) -> int:
    """Deterministic content seed for a tensor at a training step."""
    return (zlib.crc32(tensor_name.encode("utf-8"))
            ^ (model_seed * 0x01000193) ^ (step * 0x9E3779B1)) & 0xFFFFFFFF


class Tensor:
    """A spec bound to device memory with versioned pattern content."""

    def __init__(self, spec: TensorSpec, allocation: Allocation,
                 model_seed: int) -> None:
        self.spec = spec
        self.allocation = allocation
        self.model_seed = model_seed
        self.step = -1
        #: Set on every content write, cleared by the checkpoint client
        #: once the bytes are safely on the daemon — the per-tensor delta
        #: signal the incremental/dedup datapaths ship.
        self.dirty = True

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def size_bytes(self) -> int:
        return self.spec.size_bytes

    @property
    def device(self) -> MemoryDevice:
        return self.allocation.device

    def set_step(self, step: int) -> None:
        """Write this tensor's content for training step *step* (an
        optimizer update: the bytes change, the shape does not)."""
        seed = tensor_seed(self.model_seed, self.spec.name, step)
        self.allocation.write(
            0, PatternContent(seed=seed, size=self.size_bytes))
        self.step = step
        self.dirty = True

    def content(self) -> Content:
        return self.allocation.read(0, self.size_bytes)

    def expected_content(self, step: Optional[int] = None) -> Content:
        """The canonical content at *step* (defaults to the current one)."""
        target = self.step if step is None else step
        seed = tensor_seed(self.model_seed, self.spec.name, target)
        return PatternContent(seed=seed, size=self.size_bytes)

    def __repr__(self) -> str:
        return f"<Tensor {self.spec.name} step={self.step} " \
               f"on {self.device.name}>"


class ModelInstance:
    """A full model (or model shard) materialized on one device."""

    def __init__(self, name: str, tensors: List[Tensor],
                 model_seed: int) -> None:
        self.name = name
        self.tensors = tensors
        self.model_seed = model_seed
        self.step = 0

    @classmethod
    def materialize(cls, name: str, specs: Iterable[TensorSpec],
                    device: MemoryDevice,
                    model_seed: int = 0) -> "ModelInstance":
        """Allocate every tensor on *device* and write step-0 content."""
        tensors = []
        for spec in specs:
            allocation = device.alloc(spec.size_bytes,
                                      tag=f"{name}/{spec.name}")
            tensor = Tensor(spec, allocation, model_seed)
            tensor.set_step(0)
            tensors.append(tensor)
        return cls(name, tensors, model_seed)

    def state_dict(self) -> Dict[str, Tensor]:
        return {tensor.name: tensor for tensor in self.tensors}

    def update_step(self, step: int,
                    only: Optional[Iterable[str]] = None) -> None:
        """Apply an optimizer update.

        Without *only*, every parameter gets new bytes; with *only* (a
        collection of tensor names), the rest keep their current content —
        the fine-tuning / frozen-backbone case that incremental
        checkpointing exploits.
        """
        names = None if only is None else set(only)
        for tensor in self.tensors:
            if names is None or tensor.name in names:
                tensor.set_step(step)
        self.step = step

    def dirty_names(self) -> List[str]:
        """Tensors whose bytes changed since :meth:`clear_dirty`."""
        return [tensor.name for tensor in self.tensors if tensor.dirty]

    def clear_dirty(self, names: Optional[Iterable[str]] = None) -> None:
        """Mark tensors clean (checkpoint acked); all of them by default."""
        chosen = None if names is None else set(names)
        for tensor in self.tensors:
            if chosen is None or tensor.name in chosen:
                tensor.dirty = False

    @property
    def total_bytes(self) -> int:
        return sum(tensor.size_bytes for tensor in self.tensors)

    @property
    def tensor_count(self) -> int:
        return len(self.tensors)

    def verify_against(self, contents: Dict[str, Content],
                       step: Optional[int] = None) -> List[str]:
        """Names whose *contents* entry does not match the canonical bytes
        at *step*.  Empty list == bit-exact restore."""
        mismatched = []
        for tensor in self.tensors:
            expected = tensor.expected_content(step)
            got = contents.get(tensor.name)
            try:
                matches = got is not None and expected.equals(got)
            except ValueError:
                # Distinct huge contents that refuse byte comparison are,
                # by construction, not the expected pattern.
                matches = False
            if not matches:
                mismatched.append(tensor.name)
        return mismatched

    def free(self) -> None:
        """Release all device memory (job teardown)."""
        for tensor in self.tensors:
            tensor.allocation.free()

    def __repr__(self) -> str:
        return f"<ModelInstance {self.name} tensors={len(self.tensors)} " \
               f"bytes={self.total_bytes}>"

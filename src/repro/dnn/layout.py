"""Sharded-layout descriptors and resharding algebra for model groups.

A parallel-group checkpoint (DESIGN.md §14) persists, next to the shard
bytes themselves, a :class:`ShardedLayout`: the TP/PP/DP degrees plus
one :class:`PartitionSpec` per tensor per member describing exactly how
that member's local tensor maps into the global (unsharded) tensor.
With the layout on PMem, restore is no longer tied to the topology that
dumped: :func:`assemble` reassembles any global tensor bit-exactly from
its partitions, and :func:`extract` re-slices it for a *different*
TP/PP degree — ByteCheckpoint-style automatic resharding.

Partition kinds (all Megatron uses, and all this module supports):

* **replicated** (``axis=None``) — every tensor-parallel rank holds the
  full tensor (layer norms, row-parallel biases, position embeddings);
* **axis 0** (column-parallel) — the first dimension is split into
  ``parts`` equal contiguous blocks; partition *part* is a contiguous
  byte range of the row-major global tensor (QKV, fc1, vocab-parallel
  embedding);
* **axis 1** (row-parallel, 2-D only) — the second dimension is split;
  partition *part* holds columns ``[part*C/parts, (part+1)*C/parts)``
  of every row, so global row *r* is the concatenation of every
  partition's row *r* (attention dense, fc2).

The layout for a GPT group is **derived, never hand-written**:
:func:`gpt_layout` shards the config with
:func:`~repro.dnn.gpt.shard_gpt` and infers each partition by comparing
local and global shapes, so the descriptor can never drift from the
sharding code it describes.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dnn.dtypes import DType
from repro.dnn.tensor import ModelInstance, Tensor, TensorSpec
from repro.errors import ReproError
from repro.hw.content import Content, concat

LAYOUT_MAGIC = 0x53484C59  # "SHLY"
LAYOUT_VERSION = 1

_HEADER = struct.Struct("<IHHHHH")  # magic, version, tp, pp, dp, members
_SPEC_FIXED = struct.Struct("<bHH")  # axis (-1 = replicated), part, parts


class PartitionSpec:
    """How one member's local tensor maps into the global tensor."""

    __slots__ = ("name", "global_shape", "dtype", "axis", "part", "parts")

    def __init__(self, name: str, global_shape: Tuple[int, ...],
                 dtype: DType, axis: Optional[int], part: int,
                 parts: int) -> None:
        if axis is None and (part, parts) != (0, 1):
            raise ReproError(
                f"{name}: replicated spec must be part 0 of 1")
        if axis is not None:
            if axis not in (0, 1):
                raise ReproError(f"{name}: unsupported shard axis {axis}")
            if not 0 <= part < parts:
                raise ReproError(
                    f"{name}: part {part} out of range for {parts} parts")
            if global_shape[axis] % parts:
                raise ReproError(
                    f"{name}: dim {global_shape[axis]} not divisible "
                    f"into {parts} parts")
            if axis == 1 and len(global_shape) != 2:
                raise ReproError(
                    f"{name}: axis-1 sharding needs a 2-D tensor, "
                    f"got {global_shape}")
        self.name = name
        self.global_shape = tuple(int(d) for d in global_shape)
        self.dtype = dtype
        self.axis = axis
        self.part = part
        self.parts = parts

    @property
    def local_shape(self) -> Tuple[int, ...]:
        if self.axis is None:
            return self.global_shape
        shape = list(self.global_shape)
        shape[self.axis] //= self.parts
        return tuple(shape)

    @property
    def local_size_bytes(self) -> int:
        count = 1
        for dim in self.local_shape:
            count *= dim
        return count * self.dtype.itemsize

    @property
    def global_size_bytes(self) -> int:
        count = 1
        for dim in self.global_shape:
            count *= dim
        return count * self.dtype.itemsize

    def to_tensor_spec(self) -> TensorSpec:
        """The local (on-device / on-PMem) shape of this partition."""
        return TensorSpec(self.name, self.local_shape, self.dtype)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, PartitionSpec)
                and other.name == self.name
                and other.global_shape == self.global_shape
                and other.dtype == self.dtype and other.axis == self.axis
                and other.part == self.part and other.parts == self.parts)

    def __repr__(self) -> str:
        how = ("replicated" if self.axis is None
               else f"axis{self.axis} {self.part}/{self.parts}")
        return f"<PartitionSpec {self.name} {self.global_shape} {how}>"


def derive_partition(full: TensorSpec, local: TensorSpec, part: int,
                     parts: int) -> PartitionSpec:
    """Infer the partition of *local* within *full* from the shapes.

    Used to derive a layout from sharding code instead of duplicating
    its rules; ambiguity is impossible for the supported kinds because
    exactly one dimension may shrink.
    """
    if local.name != full.name or local.dtype != full.dtype:
        raise ReproError(f"cannot relate {local!r} to {full!r}")
    if local.shape == full.shape:
        return PartitionSpec(full.name, full.shape, full.dtype,
                             axis=None, part=0, parts=1)
    if (len(local.shape) == len(full.shape)
            and local.shape[0] * parts == full.shape[0]
            and local.shape[1:] == full.shape[1:]):
        return PartitionSpec(full.name, full.shape, full.dtype,
                             axis=0, part=part, parts=parts)
    if (len(full.shape) == 2 and len(local.shape) == 2
            and local.shape[0] == full.shape[0]
            and local.shape[1] * parts == full.shape[1]):
        return PartitionSpec(full.name, full.shape, full.dtype,
                             axis=1, part=part, parts=parts)
    raise ReproError(
        f"{full.name}: local shape {local.shape} is not a recognized "
        f"{parts}-way partition of {full.shape}")


class ShardedLayout:
    """A group's persisted sharding descriptor: degrees + partition specs.

    *members* is ordered pipeline-major then tensor rank (entry
    ``p * tp + t``), matching :func:`~repro.dnn.gpt.shard_gpt`;
    *partitions* maps each member model name to its ordered
    :class:`PartitionSpec` list (registration order = MIndex order).
    """

    def __init__(self, tp: int, pp: int, members: List[str],
                 partitions: Dict[str, List[PartitionSpec]],
                 dp: int = 1) -> None:
        if tp < 1 or pp < 1 or dp < 1:
            raise ReproError(f"bad parallel degrees tp={tp} pp={pp} dp={dp}")
        if len(members) != tp * pp:
            raise ReproError(
                f"{len(members)} members for tp={tp} x pp={pp}")
        if set(members) != set(partitions):
            raise ReproError("member list and partition map disagree")
        self.tp = tp
        self.pp = pp
        self.dp = dp
        self.members = list(members)
        self.partitions = {name: list(specs)
                           for name, specs in partitions.items()}

    def global_specs(self) -> Dict[str, TensorSpec]:
        """Every global tensor the group covers, by name."""
        out: Dict[str, TensorSpec] = {}
        for specs in self.partitions.values():
            for spec in specs:
                seen = out.get(spec.name)
                if seen is None:
                    out[spec.name] = TensorSpec(spec.name,
                                                spec.global_shape,
                                                spec.dtype)
                elif seen.shape != spec.global_shape:
                    raise ReproError(
                        f"{spec.name}: members disagree on global shape "
                        f"{seen.shape} vs {spec.global_shape}")
        return out

    def member_specs(self, member: str) -> List[TensorSpec]:
        """The local TensorSpecs to register for *member*."""
        return [spec.to_tensor_spec() for spec in self.partitions[member]]

    def holders(self, name: str) -> List[Tuple[str, PartitionSpec]]:
        """Every ``(member, spec)`` holding a partition of tensor *name*."""
        found = []
        for member in self.members:
            for spec in self.partitions[member]:
                if spec.name == name:
                    found.append((member, spec))
        return found

    # -- wire / PMem encoding ---------------------------------------------

    def pack(self) -> bytes:
        parts = [_HEADER.pack(LAYOUT_MAGIC, LAYOUT_VERSION, self.tp,
                              self.pp, self.dp, len(self.members))]
        for member in self.members:
            parts.append(_pack_str(member))
            specs = self.partitions[member]
            parts.append(struct.pack("<I", len(specs)))
            for spec in specs:
                parts.append(_pack_str(spec.name))
                parts.append(_pack_str(spec.dtype.name))
                parts.append(struct.pack("<B", len(spec.global_shape)))
                parts.append(struct.pack(f"<{len(spec.global_shape)}I",
                                         *spec.global_shape))
                parts.append(_SPEC_FIXED.pack(
                    -1 if spec.axis is None else spec.axis,
                    spec.part, spec.parts))
        return b"".join(parts)

    @classmethod
    def unpack(cls, blob: bytes) -> "ShardedLayout":
        view = memoryview(blob)
        magic, version, tp, pp, dp, count = _HEADER.unpack_from(view, 0)
        if magic != LAYOUT_MAGIC:
            raise ReproError(f"bad layout magic {magic:#x}")
        if version != LAYOUT_VERSION:
            raise ReproError(f"unsupported layout version {version}")
        offset = _HEADER.size
        members: List[str] = []
        partitions: Dict[str, List[PartitionSpec]] = {}
        for _ in range(count):
            member, offset = _unpack_str(view, offset)
            (spec_count,) = struct.unpack_from("<I", view, offset)
            offset += 4
            specs: List[PartitionSpec] = []
            for _ in range(spec_count):
                name, offset = _unpack_str(view, offset)
                dtype_name, offset = _unpack_str(view, offset)
                (ndims,) = struct.unpack_from("<B", view, offset)
                offset += 1
                shape = struct.unpack_from(f"<{ndims}I", view, offset)
                offset += 4 * ndims
                axis, part, parts = _SPEC_FIXED.unpack_from(view, offset)
                offset += _SPEC_FIXED.size
                specs.append(PartitionSpec(
                    name, shape, DType.by_name(dtype_name),
                    axis=None if axis < 0 else axis,
                    part=part, parts=parts))
            members.append(member)
            partitions[member] = specs
        return cls(tp, pp, members, partitions, dp=dp)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ShardedLayout)
                and other.tp == self.tp and other.pp == self.pp
                and other.dp == self.dp and other.members == self.members
                and other.partitions == self.partitions)

    def __repr__(self) -> str:
        return (f"<ShardedLayout tp={self.tp} pp={self.pp} dp={self.dp} "
                f"members={len(self.members)}>")


def _pack_str(text: str) -> bytes:
    encoded = text.encode("utf-8")
    return struct.pack("<H", len(encoded)) + encoded


def _unpack_str(view, offset: int) -> Tuple[str, int]:
    (length,) = struct.unpack_from("<H", view, offset)
    offset += 2
    return bytes(view[offset:offset + length]).decode("utf-8"), \
        offset + length


# -- GPT layouts ----------------------------------------------------------


def gpt_layout(config, tensor_parallel: int, pipeline_parallel: int,
               data_parallel: int = 1) -> ShardedLayout:
    """Derive the :class:`ShardedLayout` for a Megatron GPT group.

    Shards with :func:`~repro.dnn.gpt.shard_gpt` and infers every
    partition from the shapes, so the descriptor stays in lockstep with
    the sharding code by construction.
    """
    from repro.dnn.gpt import build_gpt, shard_gpt

    full = {spec.name: spec for spec in build_gpt(config).tensors}
    shards = shard_gpt(config, tensor_parallel, pipeline_parallel)
    members = [shard.name for shard in shards]
    partitions: Dict[str, List[PartitionSpec]] = {}
    for index, shard in enumerate(shards):
        rank = index % tensor_parallel
        partitions[shard.name] = [
            derive_partition(full[spec.name], spec, rank, tensor_parallel)
            for spec in shard.tensors]
    return ShardedLayout(tensor_parallel, pipeline_parallel, members,
                         partitions, dp=data_parallel)


# -- the resharding algebra -----------------------------------------------


def extract(spec: PartitionSpec, full: Content) -> Content:
    """The bytes of partition *spec* out of the global tensor content."""
    if full.size != spec.global_size_bytes:
        raise ReproError(
            f"{spec.name}: global content is {full.size} bytes, "
            f"layout says {spec.global_size_bytes}")
    if spec.axis is None:
        return full
    if spec.axis == 0:
        local = spec.local_size_bytes
        return full.slice(spec.part * local, local)
    # axis 1: column block [part*C/parts, (part+1)*C/parts) of each row.
    rows, columns = spec.global_shape
    row_bytes = columns * spec.dtype.itemsize
    local_row = row_bytes // spec.parts
    start = spec.part * local_row
    return concat([full.slice(r * row_bytes + start, local_row)
                   for r in range(rows)])


def assemble(holders: Iterable[Tuple[PartitionSpec, Content]]) -> Content:
    """Reassemble one global tensor bit-exactly from its partitions.

    *holders* must cover every partition exactly once (replicated
    tensors need any single holder); extra replicas are tolerated and
    ignored.
    """
    by_part: Dict[int, Tuple[PartitionSpec, Content]] = {}
    first: Optional[PartitionSpec] = None
    for spec, content in holders:
        if content.size != spec.local_size_bytes:
            raise ReproError(
                f"{spec.name}: partition {spec.part} content is "
                f"{content.size} bytes, layout says "
                f"{spec.local_size_bytes}")
        if first is None:
            first = spec
        elif (spec.name != first.name or spec.axis != first.axis
                or spec.parts != first.parts
                or spec.global_shape != first.global_shape):
            raise ReproError(
                f"{spec.name}: inconsistent partitioning across holders")
        by_part.setdefault(spec.part, (spec, content))
    if first is None:
        raise ReproError("no holders to assemble from")
    if first.axis is None:
        return by_part[0][1]
    missing = [p for p in range(first.parts) if p not in by_part]
    if missing:
        raise ReproError(
            f"{first.name}: missing partitions {missing} of "
            f"{first.parts}")
    ordered = [by_part[p][1] for p in range(first.parts)]
    if first.axis == 0:
        return concat(ordered)
    # axis 1: global row r is every partition's row r, in part order.
    rows = first.global_shape[0]
    local_row = by_part[0][0].local_size_bytes // rows
    return concat([content.slice(r * local_row, local_row)
                   for r in range(rows)
                   for content in ordered])


def reshard(source: ShardedLayout,
            contents: Dict[str, Dict[str, Content]],
            target: ShardedLayout) -> Dict[str, Dict[str, Content]]:
    """Re-slice a group checkpoint for a different TP/PP topology.

    *contents* maps each source member to its tensors' restored bytes;
    the result maps each target member to the bytes its partitions must
    hold.  Both directions go through the assembled global tensor, so
    the round trip is bit-exact by construction.
    """
    source_globals = source.global_specs()
    target_globals = target.global_specs()
    if set(source_globals) != set(target_globals):
        raise ReproError(
            f"layouts cover different tensors: "
            f"{sorted(set(source_globals) ^ set(target_globals))[:4]}")
    for name, spec in target_globals.items():
        if source_globals[name].shape != spec.shape:
            raise ReproError(
                f"{name}: global shape {source_globals[name].shape} vs "
                f"{spec.shape}")
    assembled: Dict[str, Content] = {}
    for name in source_globals:
        assembled[name] = assemble(
            (spec, contents[member][name])
            for member, spec in source.holders(name))
    out: Dict[str, Dict[str, Content]] = {}
    for member in target.members:
        out[member] = {spec.name: extract(spec, assembled[spec.name])
                       for spec in target.partitions[member]}
    return out


def materialize_member(layout: ShardedLayout, member: str, device,
                       contents: Dict[str, Content]) -> ModelInstance:
    """A member :class:`ModelInstance` holding exactly *contents*.

    Used by resharding restores (and their tests) to stage partition
    bytes on a device: unlike :meth:`ModelInstance.materialize`, the
    tensors carry the supplied bytes, not step-0 pattern content.
    """
    tensors = []
    for spec in layout.partitions[member]:
        allocation = device.alloc(spec.local_size_bytes,
                                  tag=f"{member}/{spec.name}")
        allocation.write(0, contents[spec.name])
        tensors.append(Tensor(spec.to_tensor_spec(), allocation,
                              model_seed=0))
    instance = ModelInstance(member, tensors, model_seed=0)
    return instance

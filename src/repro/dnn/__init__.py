"""DNN training substrate: tensors on simulated devices, the paper's model
zoo (Table II architectures with exact parameter counts), Megatron-style
GPT sharding, optimizers, a torch.save-like serialization format, and the
F/B/U training loop with checkpoint hooks."""

from repro.dnn.dtypes import DType, float16, float32, int64
from repro.dnn.models import MODEL_BUILDERS, ModelSpec, build_model
from repro.dnn.tensor import ModelInstance, Tensor, TensorSpec
from repro.dnn.training import CheckpointHook, TrainingJob

__all__ = [
    "CheckpointHook",
    "DType",
    "MODEL_BUILDERS",
    "ModelInstance",
    "ModelSpec",
    "Tensor",
    "TensorSpec",
    "TrainingJob",
    "build_model",
    "float16",
    "float32",
    "int64",
]

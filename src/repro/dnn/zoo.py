"""The extended model zoo (the paper's appendix evaluates 76 models).

Parameterized family builders reproducing torchvision's exact
``named_parameters()`` layouts for the ResNet, VGG-BN, ViT, Swin and
ConvNeXt families, beyond the seven representatives of Table II.  Exact
parameter counts for the well-known variants are pinned in
``tests/dnn/test_zoo.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.dnn.layers import (batchnorm2d, conv2d, layernorm, linear,
                              multihead_attention, parameter)
from repro.dnn.models import MODEL_BUILDERS, ModelSpec
from repro.dnn.tensor import TensorSpec
from repro.units import msecs


# --- ResNet family -----------------------------------------------------------------


def build_resnet(name: str, block: str, blocks_per_stage: Sequence[int],
                 iteration_ms: float = 100.0) -> ModelSpec:
    """torchvision ResNet: 'basic' (18/34) or 'bottleneck' (50/101/152)."""
    if block not in ("basic", "bottleneck"):
        raise ValueError(f"unknown block kind {block!r}")
    specs: List[TensorSpec] = []
    specs += conv2d("conv1", 3, 64, 7, bias=False)
    specs += batchnorm2d("bn1", 64)
    expansion = 1 if block == "basic" else 4
    inplanes = 64
    for stage, blocks in enumerate(blocks_per_stage, start=1):
        planes = 64 * 2 ** (stage - 1)
        for index in range(blocks):
            prefix = f"layer{stage}.{index}"
            if block == "basic":
                specs += conv2d(f"{prefix}.conv1", inplanes, planes, 3,
                                bias=False)
                specs += batchnorm2d(f"{prefix}.bn1", planes)
                specs += conv2d(f"{prefix}.conv2", planes, planes, 3,
                                bias=False)
                specs += batchnorm2d(f"{prefix}.bn2", planes)
            else:
                specs += conv2d(f"{prefix}.conv1", inplanes, planes, 1,
                                bias=False)
                specs += batchnorm2d(f"{prefix}.bn1", planes)
                specs += conv2d(f"{prefix}.conv2", planes, planes, 3,
                                bias=False)
                specs += batchnorm2d(f"{prefix}.bn2", planes)
                specs += conv2d(f"{prefix}.conv3", planes,
                                planes * expansion, 1, bias=False)
                specs += batchnorm2d(f"{prefix}.bn3", planes * expansion)
            needs_downsample = index == 0 and (
                stage > 1 or expansion != 1)
            if needs_downsample:
                specs += conv2d(f"{prefix}.downsample.0", inplanes,
                                planes * expansion, 1, bias=False)
                specs += batchnorm2d(f"{prefix}.downsample.1",
                                     planes * expansion)
            inplanes = planes * expansion
    specs += linear("fc", 512 * expansion, 1000)
    return ModelSpec(name, specs, iteration_ns=msecs(iteration_ms))


# --- VGG-BN family -----------------------------------------------------------------

_VGG_CFGS = {
    "A": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "B": [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M",
          512, 512, "M"],
    "D": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
          512, 512, 512, "M", 512, 512, 512, "M"],
    "E": [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
          512, 512, 512, 512, "M", 512, 512, 512, 512, "M"],
}


def build_vgg_bn(name: str, cfg: str,
                 iteration_ms: float = 160.0) -> ModelSpec:
    specs: List[TensorSpec] = []
    cin = 3
    index = 0
    for entry in _VGG_CFGS[cfg]:
        if entry == "M":
            index += 1
            continue
        specs += conv2d(f"features.{index}", cin, entry, 3)
        specs += batchnorm2d(f"features.{index + 1}", entry)
        cin = entry
        index += 3
    specs += linear("classifier.0", 25088, 4096)
    specs += linear("classifier.3", 4096, 4096)
    specs += linear("classifier.6", 4096, 1000)
    return ModelSpec(name, specs, iteration_ns=msecs(iteration_ms))


# --- ViT family --------------------------------------------------------------------


def build_vit(name: str, patch: int, hidden: int, layers: int, mlp: int,
              iteration_ms: float = 80.0, image: int = 224) -> ModelSpec:
    specs: List[TensorSpec] = []
    patches = (image // patch) ** 2
    specs += parameter("class_token", (1, 1, hidden))
    specs += conv2d("conv_proj", 3, hidden, patch)
    specs += parameter("encoder.pos_embedding", (1, patches + 1, hidden))
    for layer in range(layers):
        prefix = f"encoder.layers.encoder_layer_{layer}"
        specs += layernorm(f"{prefix}.ln_1", hidden)
        specs += multihead_attention(f"{prefix}.self_attention", hidden)
        specs += layernorm(f"{prefix}.ln_2", hidden)
        specs += linear(f"{prefix}.mlp.linear_1", hidden, mlp)
        specs += linear(f"{prefix}.mlp.linear_2", mlp, hidden)
    specs += layernorm("encoder.ln", hidden)
    specs += linear("heads.head", hidden, 1000)
    return ModelSpec(name, specs, iteration_ns=msecs(iteration_ms))


# --- Swin family --------------------------------------------------------------------


def build_swin(name: str, embed_dim: int, depths: Sequence[int],
               heads: Sequence[int], iteration_ms: float = 180.0,
               window: int = 7) -> ModelSpec:
    specs: List[TensorSpec] = []
    dims = [embed_dim * 2 ** i for i in range(len(depths))]
    specs += conv2d("features.0.0", 3, dims[0], 4)
    specs += layernorm("features.0.2", dims[0])
    feature_index = 1
    for stage, (dim, depth, head) in enumerate(zip(dims, depths, heads)):
        for index in range(depth):
            prefix = f"features.{feature_index}.{index}"
            specs += layernorm(f"{prefix}.norm1", dim)
            specs += linear(f"{prefix}.attn.qkv", dim, 3 * dim)
            specs += parameter(
                f"{prefix}.attn.relative_position_bias_table",
                ((2 * window - 1) ** 2, head))
            specs += linear(f"{prefix}.attn.proj", dim, dim)
            specs += layernorm(f"{prefix}.norm2", dim)
            specs += linear(f"{prefix}.mlp.0", dim, 4 * dim)
            specs += linear(f"{prefix}.mlp.3", 4 * dim, dim)
        feature_index += 1
        if stage < len(depths) - 1:
            specs += linear(f"features.{feature_index}.reduction",
                            4 * dim, 2 * dim, bias=False)
            specs += layernorm(f"features.{feature_index}.norm", 4 * dim)
            feature_index += 1
    specs += layernorm("norm", dims[-1])
    specs += linear("head", dims[-1], 1000)
    return ModelSpec(name, specs, iteration_ns=msecs(iteration_ms))


# --- ConvNeXt family ----------------------------------------------------------------


def build_convnext(name: str, dims: Sequence[int], depths: Sequence[int],
                   iteration_ms: float = 170.0) -> ModelSpec:
    specs: List[TensorSpec] = []
    specs += conv2d("features.0.0", 3, dims[0], 4)
    specs += layernorm("features.0.1", dims[0])
    feature_index = 1
    for stage, (dim, depth) in enumerate(zip(dims, depths)):
        for index in range(depth):
            prefix = f"features.{feature_index}.{index}.block"
            specs += conv2d(f"{prefix}.0", dim, dim, 7, groups=dim)
            specs += layernorm(f"{prefix}.2", dim)
            specs += linear(f"{prefix}.3", dim, 4 * dim)
            specs += linear(f"{prefix}.5", 4 * dim, dim)
            specs += parameter(
                f"features.{feature_index}.{index}.layer_scale",
                (dim, 1, 1))
        feature_index += 1
        if stage < len(depths) - 1:
            specs += layernorm(f"features.{feature_index}.0", dim)
            specs += conv2d(f"features.{feature_index}.1", dim,
                            dims[stage + 1], 2)
            feature_index += 1
    specs += layernorm("classifier.0", dims[-1])
    specs += linear("classifier.2", dims[-1], 1000)
    return ModelSpec(name, specs, iteration_ns=msecs(iteration_ms))


# --- registry --------------------------------------------------------------------------

ZOO_BUILDERS: Dict[str, Callable[[], ModelSpec]] = {
    # ResNets.
    "resnet18": lambda: build_resnet("resnet18", "basic", (2, 2, 2, 2), 45),
    "resnet34": lambda: build_resnet("resnet34", "basic", (3, 4, 6, 3), 75),
    "resnet101": lambda: build_resnet("resnet101", "bottleneck",
                                      (3, 4, 23, 3), 190),
    "resnet152": lambda: build_resnet("resnet152", "bottleneck",
                                      (3, 8, 36, 3), 270),
    # VGGs.
    "vgg11_bn": lambda: build_vgg_bn("vgg11_bn", "A", 100),
    "vgg13_bn": lambda: build_vgg_bn("vgg13_bn", "B", 120),
    "vgg16_bn": lambda: build_vgg_bn("vgg16_bn", "D", 145),
    # ViTs.
    "vit_b_16": lambda: build_vit("vit_b_16", 16, 768, 12, 3072, 95),
    "vit_b_32": lambda: build_vit("vit_b_32", 32, 768, 12, 3072, 40),
    "vit_l_16": lambda: build_vit("vit_l_16", 16, 1024, 24, 4096, 250),
    # Swins.
    "swin_t": lambda: build_swin("swin_t", 96, (2, 2, 6, 2),
                                 (3, 6, 12, 24), 90),
    "swin_s": lambda: build_swin("swin_s", 96, (2, 2, 18, 2),
                                 (3, 6, 12, 24), 150),
    # ConvNeXts.
    "convnext_tiny": lambda: build_convnext(
        "convnext_tiny", (96, 192, 384, 768), (3, 3, 9, 3), 95),
    "convnext_small": lambda: build_convnext(
        "convnext_small", (96, 192, 384, 768), (3, 3, 27, 3), 140),
    "convnext_large": lambda: build_convnext(
        "convnext_large", (192, 384, 768, 1536), (3, 3, 27, 3), 300),
}


#: Name prefixes of the classification heads across every family the
#: zoo builds (torchvision's conventions).
_HEAD_PREFIXES = ("fc.", "classifier.", "heads.", "head.")


def head_tensor_names(spec: ModelSpec) -> List[str]:
    """The classification-head tensors of a zoo model.

    A fine-tune retrains exactly these while the backbone keeps the base
    weights — which is what makes two fine-tunes of the same base share
    almost all of their chunks under the deduplicated checkpoint layout.
    """
    names = [tensor.name for tensor in spec.tensors
             if tensor.name.startswith(_HEAD_PREFIXES)]
    if not names:
        raise ValueError(f"{spec.name}: no recognizable head tensors")
    return names


def build_zoo_model(name: str) -> ModelSpec:
    """Build any model: Table II representative or zoo variant."""
    if name in MODEL_BUILDERS:
        return MODEL_BUILDERS[name]()
    try:
        return ZOO_BUILDERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; choices: "
            f"{sorted(set(MODEL_BUILDERS) | set(ZOO_BUILDERS))}") from None


def all_model_names() -> List[str]:
    """Every model the zoo can build (Table II + appendix families)."""
    return sorted(set(MODEL_BUILDERS) | set(ZOO_BUILDERS))

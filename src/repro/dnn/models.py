"""The Table II model zoo: exact torchvision/HF parameter layouts.

Each builder emits the ``named_parameters()`` tensor list of the real
implementation, so the layer counts and parameter totals of Table II are
*reproduced*, not approximated — e.g. ResNet50 comes out at exactly
25,557,032 parameters across 161 tensors.  The tests in
``tests/dnn/test_models.py`` pin every model against the paper's table.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.dnn.layers import (batchnorm2d, conv2d, embedding, layernorm,
                              linear, multihead_attention, parameter,
                              total_bytes, total_params)
from repro.dnn.tensor import TensorSpec
from repro.units import msecs


class ModelSpec:
    """A named model: tensor specs plus a nominal iteration time.

    ``iteration_ns`` is the F+B+U wall time of one training step at the
    model's default batch size on the paper's V100s — used by the training
    loop; checkpoint experiments never depend on it directly.
    """

    def __init__(self, name: str, tensors: List[TensorSpec],
                 iteration_ns: int) -> None:
        self.name = name
        self.tensors = tensors
        self.iteration_ns = iteration_ns

    @property
    def param_count(self) -> int:
        return total_params(self.tensors)

    @property
    def total_bytes(self) -> int:
        return total_bytes(self.tensors)

    @property
    def tensor_count(self) -> int:
        return len(self.tensors)

    def __repr__(self) -> str:
        return f"<ModelSpec {self.name} params={self.param_count} " \
               f"tensors={self.tensor_count}>"


# --- CNNs -----------------------------------------------------------------------


def build_alexnet() -> ModelSpec:
    specs: List[TensorSpec] = []
    feature_convs = [(3, 64, 11), (64, 192, 5), (192, 384, 3),
                     (384, 256, 3), (256, 256, 3)]
    feature_indexes = (0, 3, 6, 8, 10)
    for index, (cin, cout, kernel) in zip(feature_indexes, feature_convs):
        specs += conv2d(f"features.{index}", cin, cout, kernel)
    specs += linear("classifier.1", 9216, 4096)
    specs += linear("classifier.4", 4096, 4096)
    specs += linear("classifier.6", 4096, 1000)
    return ModelSpec("alexnet", specs, iteration_ns=msecs(35))


def build_vgg19_bn() -> ModelSpec:
    specs: List[TensorSpec] = []
    cfg = [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
           512, 512, 512, 512, "M", 512, 512, 512, 512, "M"]
    cin = 3
    index = 0
    for entry in cfg:
        if entry == "M":
            index += 1
            continue
        specs += conv2d(f"features.{index}", cin, entry, 3)
        specs += batchnorm2d(f"features.{index + 1}", entry)
        cin = entry
        index += 3  # conv, bn, relu
    specs += linear("classifier.0", 25088, 4096)
    specs += linear("classifier.3", 4096, 4096)
    specs += linear("classifier.6", 4096, 1000)
    return ModelSpec("vgg19_bn", specs, iteration_ns=msecs(170))


def build_resnet50() -> ModelSpec:
    specs: List[TensorSpec] = []
    specs += conv2d("conv1", 3, 64, 7, bias=False)
    specs += batchnorm2d("bn1", 64)
    inplanes = 64
    expansion = 4
    for stage, (planes, blocks) in enumerate(
            [(64, 3), (128, 4), (256, 6), (512, 3)], start=1):
        for block in range(blocks):
            prefix = f"layer{stage}.{block}"
            specs += conv2d(f"{prefix}.conv1", inplanes, planes, 1,
                            bias=False)
            specs += batchnorm2d(f"{prefix}.bn1", planes)
            specs += conv2d(f"{prefix}.conv2", planes, planes, 3, bias=False)
            specs += batchnorm2d(f"{prefix}.bn2", planes)
            specs += conv2d(f"{prefix}.conv3", planes, planes * expansion, 1,
                            bias=False)
            specs += batchnorm2d(f"{prefix}.bn3", planes * expansion)
            if block == 0:
                specs += conv2d(f"{prefix}.downsample.0", inplanes,
                                planes * expansion, 1, bias=False)
                specs += batchnorm2d(f"{prefix}.downsample.1",
                                     planes * expansion)
            inplanes = planes * expansion
    specs += linear("fc", 2048, 1000)
    return ModelSpec("resnet50", specs, iteration_ns=msecs(120))


def build_convnext_base() -> ModelSpec:
    specs: List[TensorSpec] = []
    dims = [128, 256, 512, 1024]
    depths = [3, 3, 27, 3]
    specs += conv2d("features.0.0", 3, dims[0], 4)
    specs += layernorm("features.0.1", dims[0])
    feature_index = 1
    for stage, (dim, depth) in enumerate(zip(dims, depths)):
        for block in range(depth):
            prefix = f"features.{feature_index}.{block}.block"
            specs += conv2d(f"{prefix}.0", dim, dim, 7, groups=dim)
            specs += layernorm(f"{prefix}.2", dim)
            specs += linear(f"{prefix}.3", dim, 4 * dim)
            specs += linear(f"{prefix}.5", 4 * dim, dim)
            specs += parameter(
                f"features.{feature_index}.{block}.layer_scale",
                (dim, 1, 1))
        feature_index += 1
        if stage < 3:
            specs += layernorm(f"features.{feature_index}.0", dim)
            specs += conv2d(f"features.{feature_index}.1", dim, dims[stage + 1],
                            2)
            feature_index += 1
    specs += layernorm("classifier.0", dims[-1])
    specs += linear("classifier.2", dims[-1], 1000)
    return ModelSpec("convnext_base", specs, iteration_ns=msecs(180))


def build_swin_b() -> ModelSpec:
    specs: List[TensorSpec] = []
    dims = [128, 256, 512, 1024]
    depths = [2, 2, 18, 2]
    heads = [4, 8, 16, 32]
    window = 7
    specs += conv2d("features.0.0", 3, dims[0], 4)
    specs += layernorm("features.0.2", dims[0])
    feature_index = 1
    for stage, (dim, depth, head) in enumerate(zip(dims, depths, heads)):
        for block in range(depth):
            prefix = f"features.{feature_index}.{block}"
            specs += layernorm(f"{prefix}.norm1", dim)
            specs += linear(f"{prefix}.attn.qkv", dim, 3 * dim)
            specs += parameter(
                f"{prefix}.attn.relative_position_bias_table",
                ((2 * window - 1) ** 2, head))
            specs += linear(f"{prefix}.attn.proj", dim, dim)
            specs += layernorm(f"{prefix}.norm2", dim)
            specs += linear(f"{prefix}.mlp.0", dim, 4 * dim)
            specs += linear(f"{prefix}.mlp.3", 4 * dim, dim)
        feature_index += 1
        if stage < 3:
            specs += linear(f"features.{feature_index}.reduction", 4 * dim,
                            2 * dim, bias=False)
            specs += layernorm(f"features.{feature_index}.norm", 4 * dim)
            feature_index += 1
    specs += layernorm("norm", dims[-1])
    specs += linear("head", dims[-1], 1000)
    return ModelSpec("swin_b", specs, iteration_ns=msecs(200))


# --- Transformers -----------------------------------------------------------------


def build_vit_l_32() -> ModelSpec:
    specs: List[TensorSpec] = []
    hidden, mlp, layers = 1024, 4096, 24
    patches = (224 // 32) ** 2
    specs += parameter("class_token", (1, 1, hidden))
    specs += conv2d("conv_proj", 3, hidden, 32)
    specs += parameter("encoder.pos_embedding", (1, patches + 1, hidden))
    for layer in range(layers):
        prefix = f"encoder.layers.encoder_layer_{layer}"
        specs += layernorm(f"{prefix}.ln_1", hidden)
        specs += multihead_attention(f"{prefix}.self_attention", hidden)
        specs += layernorm(f"{prefix}.ln_2", hidden)
        specs += linear(f"{prefix}.mlp.linear_1", hidden, mlp)
        specs += linear(f"{prefix}.mlp.linear_2", mlp, hidden)
    specs += layernorm("encoder.ln", hidden)
    specs += linear("heads.head", hidden, 1000)
    return ModelSpec("vit_l_32", specs, iteration_ns=msecs(62))


def build_bert_large() -> ModelSpec:
    specs: List[TensorSpec] = []
    hidden, intermediate, layers = 1024, 4096, 24
    vocab, positions, types = 30522, 512, 2
    specs += embedding("bert.embeddings.word_embeddings", vocab, hidden)
    specs += embedding("bert.embeddings.position_embeddings", positions,
                       hidden)
    specs += embedding("bert.embeddings.token_type_embeddings", types,
                       hidden)
    specs += layernorm("bert.embeddings.LayerNorm", hidden)
    for layer in range(layers):
        prefix = f"bert.encoder.layer.{layer}"
        for proj in ("query", "key", "value"):
            specs += linear(f"{prefix}.attention.self.{proj}", hidden,
                            hidden)
        specs += linear(f"{prefix}.attention.output.dense", hidden, hidden)
        specs += layernorm(f"{prefix}.attention.output.LayerNorm", hidden)
        specs += linear(f"{prefix}.intermediate.dense", hidden, intermediate)
        specs += linear(f"{prefix}.output.dense", intermediate, hidden)
        specs += layernorm(f"{prefix}.output.LayerNorm", hidden)
    specs += linear("bert.pooler.dense", hidden, hidden)
    # Masked-LM head (decoder weight is tied to the word embeddings and
    # therefore not a separate parameter).
    specs += linear("cls.predictions.transform.dense", hidden, hidden)
    specs += layernorm("cls.predictions.transform.LayerNorm", hidden)
    specs += parameter("cls.predictions.bias", (vocab,))
    return ModelSpec("bert_large", specs, iteration_ns=msecs(350))


MODEL_BUILDERS: Dict[str, Callable[[], ModelSpec]] = {
    "alexnet": build_alexnet,
    "convnext_base": build_convnext_base,
    "resnet50": build_resnet50,
    "swin_b": build_swin_b,
    "vgg19_bn": build_vgg19_bn,
    "vit_l_32": build_vit_l_32,
    "bert_large": build_bert_large,
}


def build_model(name: str) -> ModelSpec:
    """Build one of the paper's seven representative models by name."""
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; choices: {sorted(MODEL_BUILDERS)}"
        ) from None
    return builder()


#: Table II, for the validation tests and the reports.
TABLE_II = {
    "alexnet": {"layers": 16, "params": 61.1e6, "size_mib": 233},
    "convnext_base": {"layers": 344, "params": 88.6e6, "size_mib": 338},
    "resnet50": {"layers": 161, "params": 25.6e6, "size_mib": 97},
    "swin_b": {"layers": 329, "params": 87.8e6, "size_mib": 335},
    "vgg19_bn": {"layers": 70, "params": 143.7e6, "size_mib": 548},
    "vit_l_32": {"layers": 296, "params": 306.5e6, "size_mib": 1169},
    "bert_large": {"layers": 396, "params": 336.2e6, "size_mib": 1282},
}

"""Optimizer state specs: what a checkpoint contains beyond parameters.

The paper's Table II sizes (and the 89.6 GB GPT-22.4B checkpoint) count
fp32 parameters only, so checkpoints default to the bare model; these
helpers produce the extra state tensors when an experiment opts into
optimizer checkpointing (SGD momentum: 1x, Adam: 2x + step scalars).
"""

from __future__ import annotations

from typing import List

from repro.dnn.dtypes import int64
from repro.dnn.tensor import TensorSpec

OPTIMIZER_KINDS = ("sgd", "sgd_momentum", "adam")


def optimizer_state_specs(param_specs: List[TensorSpec],
                          kind: str = "sgd_momentum") -> List[TensorSpec]:
    """Extra tensors the optimizer contributes to a full checkpoint."""
    if kind not in OPTIMIZER_KINDS:
        raise ValueError(
            f"unknown optimizer {kind!r}; choices: {OPTIMIZER_KINDS}")
    state: List[TensorSpec] = []
    if kind == "sgd":
        return state
    for spec in param_specs:
        if kind == "sgd_momentum":
            state.append(TensorSpec(f"optimizer.momentum.{spec.name}",
                                    spec.shape, spec.dtype))
        else:  # adam
            state.append(TensorSpec(f"optimizer.exp_avg.{spec.name}",
                                    spec.shape, spec.dtype))
            state.append(TensorSpec(f"optimizer.exp_avg_sq.{spec.name}",
                                    spec.shape, spec.dtype))
            state.append(TensorSpec(f"optimizer.step.{spec.name}", (1,),
                                    int64))
    return state


def checkpoint_specs(param_specs: List[TensorSpec],
                     optimizer: str = "sgd") -> List[TensorSpec]:
    """Parameters plus (optionally) optimizer state, in checkpoint order."""
    return list(param_specs) + optimizer_state_specs(param_specs, optimizer)

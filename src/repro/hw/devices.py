"""Concrete device types with defaults taken from the paper's testbed.

Bandwidth defaults are the calibration anchors described in DESIGN.md §5;
they can all be overridden per instance, and the single source of truth for
experiment runs is :mod:`repro.harness.calibration`.
"""

from __future__ import annotations

from repro.hw.device import MemoryDevice
from repro.sim import Environment, SharedChannel
from repro.units import gbytes, gib, usecs

# (SharedChannel is used for the GPU PCIe channels and the PMem write
# channel's congestion-aware replacement.)


class DramDevice(MemoryDevice):
    """Host DRAM.  Effectively never the bandwidth bottleneck."""

    def __init__(self, env: Environment, name: str = "dram",
                 capacity: int = gib(1024),
                 read_bw_bps: float = gbytes(80.0),
                 write_bw_bps: float = gbytes(60.0)) -> None:
        super().__init__(env, name, capacity, read_bw_bps, write_bw_bps)


class GpuMemory(MemoryDevice):
    """GPU HBM reached through a PCIe BAR window.

    The device channels model HBM itself (fast).  The PCIe attachment —
    including the paper's key observation that BAR-mapped *reads* of GPU
    memory cap at 5.8 GB/s while writes are unaffected (Fig. 10) — lives in
    the per-GPU ``pcie_read`` / ``pcie_write`` channels, which every DMA
    path through this GPU must traverse.
    """

    def __init__(self, env: Environment, name: str = "gpu0",
                 capacity: int = gib(32),
                 hbm_bw_bps: float = gbytes(800.0),
                 pcie_read_bw_bps: float = gbytes(5.8),
                 pcie_write_bw_bps: float = gbytes(9.0)) -> None:
        super().__init__(env, name, capacity, hbm_bw_bps, hbm_bw_bps)
        self.pcie_read = SharedChannel(env, pcie_read_bw_bps,
                                       f"{name}.pcie.read")
        self.pcie_write = SharedChannel(env, pcie_write_bw_bps,
                                        f"{name}.pcie.write")


class PmemDimm(MemoryDevice):
    """An interleaved Optane DC namespace (n x 256 GB DIMMs).

    Defaults model the paper's 3-DIMM interleave set: sequential read
    ~6.8 GB/s per DIMM; writes sustain ~2.8 GB/s per DIMM for a few
    sequential streams but degrade to ~2.0 GB/s per DIMM when many writers
    interleave on the 256 B XPLine (the well-documented Optane contention
    behaviour; Izraelevitz et al. / Wei et al., both cited by the paper).
    A single checkpoint stream therefore sees PMem ≈ DRAM as a target
    (Fig. 10), while sixteen concurrent GPT shards see the ~6 GB/s
    aggregate ingest behind the paper's ~15 s Fig. 14 dump.  The slower
    5.64 GB/s "DAX write" of Table I is a property of the fsdax
    *filesystem* path, modeled in :mod:`repro.fs.dax`.
    """

    durable_tracking = True

    def __init__(self, env: Environment, name: str = "pmem0",
                 dimms: int = 3, dimm_capacity: int = gib(256),
                 read_bw_per_dimm_bps: float = gbytes(6.8),
                 write_bw_per_dimm_bps: float = gbytes(2.8),
                 congested_write_bw_per_dimm_bps: float = gbytes(2.0),
                 congestion_threshold: int = 4) -> None:
        if dimms < 1:
            raise ValueError(f"need at least one DIMM, got {dimms}")
        super().__init__(
            env, name, dimms * dimm_capacity,
            read_bw_bps=dimms * read_bw_per_dimm_bps,
            write_bw_bps=dimms * write_bw_per_dimm_bps,
            read_latency_ns=usecs(0.3), write_latency_ns=usecs(0.1))
        self.write_channel = SharedChannel(
            env, dimms * write_bw_per_dimm_bps, f"{name}.write",
            congested_capacity_bps=dimms * congested_write_bw_per_dimm_bps,
            congestion_threshold=congestion_threshold)
        self.dimms = dimms


class NvmeDevice(MemoryDevice):
    """A PCIe 4.0 NVMe SSD behind the kernel block layer.

    Write bandwidth defaults to the 2.7 GB/s maximum sequential write of
    the datacenter SSD the paper cites; ``io_latency_ns`` is the per-request
    block-layer + device latency each submitted I/O pays.
    """

    def __init__(self, env: Environment, name: str = "nvme0",
                 capacity: int = gib(3840),
                 read_bw_bps: float = gbytes(6.5),
                 write_bw_bps: float = gbytes(2.7),
                 io_latency_ns: int = usecs(80)) -> None:
        super().__init__(env, name, capacity, read_bw_bps, write_bw_bps,
                         read_latency_ns=io_latency_ns,
                         write_latency_ns=io_latency_ns)
        self.io_latency_ns = io_latency_ns

"""MemoryDevice: a byte-addressable device with an allocator and channels.

A device owns an address space managed by a first-fit free list.  Each
allocation is backed by a :class:`~repro.hw.content.SegmentBuffer`, so the
data living on the device is real (content-wise) while huge payloads stay
virtual.  Timing enters through the device's directional
:class:`~repro.sim.SharedChannel` pair: any transfer touching the device
claims a flow on the appropriate channel, which is how device bandwidth
limits and contention (e.g. PMem write bandwidth under sixteen concurrent
checkpoint streams) emerge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import InvalidAddressError, OutOfMemoryError
from repro.hw.content import (ByteContent, Content, SegmentBuffer,
                              TornContent)


def _subtract_range(ranges: List[Tuple[int, int]], lo: int,
                    hi: int) -> List[Tuple[int, int]]:
    """Remove ``[lo, hi)`` from a list of ``(offset, size)`` ranges."""
    out: List[Tuple[int, int]] = []
    for offset, size in ranges:
        end = offset + size
        if end <= lo or offset >= hi:
            out.append((offset, size))
            continue
        if offset < lo:
            out.append((offset, lo - offset))
        if end > hi:
            out.append((hi, end - hi))
    return out
from repro.sim import Environment, SharedChannel

ALIGNMENT = 64


class Allocation:
    """A live region of device memory.

    On devices with ``durable_tracking`` (PMem), the allocation keeps two
    views: ``buffer`` is what a CPU or DMA engine observes (store buffers /
    caches / DDIO included), ``durable`` is what survives power loss.
    Writes land in ``buffer`` and are logged; :meth:`persist` (clwb+fence)
    promotes a range to ``durable``; a crash replays each unflushed range
    with an arbitrary outcome (lost, fully evicted, or torn).
    """

    def __init__(self, device: "MemoryDevice", addr: int, size: int,
                 tag: str = "") -> None:
        self.device = device
        self.addr = addr
        self.size = size
        self.tag = tag
        self.buffer = SegmentBuffer(size)
        self.freed = False
        # Bumped on every write; in-flight DMA compares versions to detect
        # torn snapshots (data mutated while a one-sided read was flying).
        self.version = 0
        self.durable: Optional[SegmentBuffer] = None
        self._unflushed: List[Tuple[int, int]] = []
        if device.durable_tracking:
            self.durable = SegmentBuffer(size)

    @property
    def end(self) -> int:
        return self.addr + self.size

    def write(self, offset: int, content: Content) -> None:
        """Store *content* at *offset* within the allocation."""
        self._check_live()
        self.version += 1
        self.buffer.write(offset, content)
        if self.durable is not None and content.size > 0:
            self._unflushed.append((offset, content.size))

    # -- persistence (PMem-backed allocations only) ----------------------------

    def persist(self, offset: int = 0, length: Optional[int] = None) -> None:
        """clwb + sfence: make ``[offset, offset+length)`` power-fail safe."""
        if self.durable is None:
            return
        self._check_live()
        if length is None:
            length = self.size - offset
        if offset < 0 or length < 0 or offset + length > self.size:
            raise ValueError(
                f"persist [{offset}, {offset + length}) outside allocation "
                f"of size {self.size}")
        if length == 0:
            return
        self.durable.write(offset, self.buffer.read(offset, length))
        self._unflushed = _subtract_range(self._unflushed, offset,
                                          offset + length)

    @property
    def unflushed_ranges(self) -> List[Tuple[int, int]]:
        """Write ranges that would be at risk in a crash right now."""
        return list(self._unflushed)

    def crash(self, rng) -> None:
        """Power loss: each unflushed range survives, vanishes, or tears.

        *rng* is a :class:`random.Random`; the three outcomes model cache
        lines that were evicted in full, not at all, or partially.
        """
        if self.durable is None:
            return
        for offset, size in self._unflushed:
            outcome = rng.choice(("lost", "evicted", "torn"))
            if outcome == "evicted":
                self.durable.write(offset, self.buffer.read(offset, size))
            elif outcome == "torn":
                self.durable.write(
                    offset, TornContent(size, note=f"crash at {offset}"))
            # "lost": the durable view keeps its pre-write content.
        self._unflushed = []
        restored = SegmentBuffer(self.size)
        if self.size > 0:
            restored.write(0, self.durable.read(0, self.size))
        self.buffer = restored
        self.version += 1

    def read(self, offset: int = 0, length: Optional[int] = None) -> Content:
        """Read content at *offset* within the allocation."""
        self._check_live()
        return self.buffer.read(offset, length)

    def write_bytes(self, offset: int, data: bytes) -> None:
        self.write(offset, ByteContent(data))

    def read_bytes(self, offset: int, length: int) -> bytes:
        self._check_live()
        return self.buffer.read_bytes(offset, length)

    def free(self) -> None:
        """Release the region back to the device."""
        self.device.free(self)

    def _check_live(self) -> None:
        if self.freed:
            raise InvalidAddressError(
                f"use-after-free of {self.tag or 'allocation'} at "
                f"{self.addr:#x} on {self.device.name}")

    def __repr__(self) -> str:
        state = "freed" if self.freed else "live"
        return f"<Allocation {self.tag or ''}@{self.addr:#x}+{self.size} " \
               f"{state} on {self.device.name}>"


class MemoryDevice:
    """Byte-addressable device with bandwidth channels and an allocator."""

    #: Subclasses (PMem) set this to give allocations a durable view.
    durable_tracking = False

    def __init__(self, env: Environment, name: str, capacity: int,
                 read_bw_bps: float, write_bw_bps: float,
                 read_latency_ns: int = 0, write_latency_ns: int = 0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.name = name
        self.capacity = capacity
        self.read_latency_ns = read_latency_ns
        self.write_latency_ns = write_latency_ns
        self.read_channel = SharedChannel(env, read_bw_bps, f"{name}.read")
        self.write_channel = SharedChannel(env, write_bw_bps, f"{name}.write")
        # Sorted free list of (addr, size); starts as one hole.
        self._free: List[Tuple[int, int]] = [(0, capacity)]
        self._allocations: Dict[int, Allocation] = {}
        #: Crash-point instrumentation: when set, the PMem metadata layer
        #: calls ``crash_hook(point, tag)`` at every persistence write
        #: boundary (committed-record writes, extent alloc/free).  The
        #: hook may power-fail the device and raise
        #: :class:`~repro.errors.PowerFailure` to cut the operation
        #: short; None (the default) costs nothing.
        self.crash_hook = None

    # -- allocator -------------------------------------------------------------

    def alloc(self, size: int, tag: str = "") -> Allocation:
        """First-fit allocation, 64-byte aligned."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        rounded = (size + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT
        for i, (addr, hole) in enumerate(self._free):
            if hole >= rounded:
                if hole == rounded:
                    self._free.pop(i)
                else:
                    self._free[i] = (addr + rounded, hole - rounded)
                allocation = Allocation(self, addr, size, tag)
                self._allocations[addr] = allocation
                return allocation
        raise OutOfMemoryError(
            f"{self.name}: cannot allocate {size} bytes "
            f"({self.free_bytes} free of {self.capacity})")

    def free(self, allocation: Allocation) -> None:
        """Return an allocation's space to the free list (with coalescing)."""
        if allocation.freed or allocation.addr not in self._allocations:
            raise InvalidAddressError(
                f"double free at {allocation.addr:#x} on {self.name}")
        del self._allocations[allocation.addr]
        allocation.freed = True
        rounded = ((allocation.size + ALIGNMENT - 1)
                   // ALIGNMENT * ALIGNMENT)
        self._free.append((allocation.addr, rounded))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for addr, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == addr:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((addr, size))
        self._free = merged

    @property
    def free_bytes(self) -> int:
        return sum(size for _addr, size in self._free)

    @property
    def used_bytes(self) -> int:
        return self.capacity - self.free_bytes

    @property
    def allocations(self) -> List[Allocation]:
        return list(self._allocations.values())

    def crash(self, rng) -> None:
        """Power-fail the whole device (durable-tracking devices only)."""
        for allocation in self._allocations.values():
            allocation.crash(rng)

    # -- address-based access (what RDMA sees) ----------------------------------

    def allocation_at(self, addr: int) -> Allocation:
        """Find the live allocation containing *addr*."""
        for allocation in self._allocations.values():
            if allocation.addr <= addr < allocation.end:
                return allocation
        raise InvalidAddressError(
            f"{self.name}: address {addr:#x} is not allocated")

    def read_at(self, addr: int, length: int) -> Content:
        """Address-based read; must fall inside one allocation."""
        allocation = self.allocation_at(addr)
        if addr + length > allocation.end:
            raise InvalidAddressError(
                f"{self.name}: read [{addr:#x}, {addr + length:#x}) crosses "
                f"allocation end {allocation.end:#x}")
        return allocation.read(addr - allocation.addr, length)

    def write_at(self, addr: int, content: Content) -> None:
        """Address-based write; must fall inside one allocation."""
        allocation = self.allocation_at(addr)
        if addr + content.size > allocation.end:
            raise InvalidAddressError(
                f"{self.name}: write [{addr:#x}, {addr + content.size:#x}) "
                f"crosses allocation end {allocation.end:#x}")
        allocation.write(addr - allocation.addr, content)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} " \
               f"{self.used_bytes}/{self.capacity}B used>"

"""Nodes: CPUs + devices wired together, matching the paper's testbed.

A node owns its DRAM, its accelerators/storage, and a :class:`CpuSet` used
to time CPU-bound work (serialization is the big one).  The RNIC is
attached by the network layer (:mod:`repro.rdma.nic`) after construction
because it needs the fabric.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.hw.devices import DramDevice, GpuMemory, NvmeDevice, PmemDimm
from repro.sim import Environment, Resource
from repro.units import gbytes, gib, transfer_time_ns


class CpuSet:
    """A pool of cores; CPU-bound work claims a core for its duration."""

    def __init__(self, env: Environment, cores: int,
                 name: str = "cpu") -> None:
        if cores < 1:
            raise ValueError(f"need at least one core, got {cores}")
        self.env = env
        self.cores = cores
        self.name = name
        self._pool = Resource(env, capacity=cores)
        self.busy_ns = 0

    def execute(self, cpu_time_ns: int) -> Generator:
        """Process: hold one core for *cpu_time_ns* (queueing if saturated)."""
        req = self._pool.request()
        yield req
        try:
            yield self.env.timeout(cpu_time_ns)
            self.busy_ns += cpu_time_ns
        finally:
            self._pool.release(req)

    def execute_throughput(self, size_bytes: int,
                           bytes_per_second: float) -> Generator:
        """Process: single-core streaming work over *size_bytes*."""
        yield from self.execute(transfer_time_ns(size_bytes, bytes_per_second))

    @property
    def cores_busy(self) -> int:
        return self._pool.in_use


class Node:
    """Common base: name, CPU set, DRAM."""

    def __init__(self, env: Environment, name: str, cores: int,
                 dram_capacity: int) -> None:
        self.env = env
        self.name = name
        self.cpus = CpuSet(env, cores, name=f"{name}.cpu")
        self.dram = DramDevice(env, name=f"{name}.dram",
                               capacity=dram_capacity)
        self.nic = None  # attached by repro.rdma.nic.Rnic

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class ComputeNode(Node):
    """A GPU client node (Client-Volta / Client-Ampere in the paper)."""

    def __init__(self, env: Environment, name: str, cores: int = 128,
                 dram_capacity: int = gib(1024), gpu_count: int = 4,
                 gpu_memory: int = gib(32),
                 gpu_pcie_read_bw_bps: float = gbytes(5.8),
                 gpu_pcie_write_bw_bps: float = gbytes(9.0),
                 nvme: bool = True) -> None:
        super().__init__(env, name, cores, dram_capacity)
        self.gpus: List[GpuMemory] = [
            GpuMemory(env, name=f"{name}.gpu{i}", capacity=gpu_memory,
                      pcie_read_bw_bps=gpu_pcie_read_bw_bps,
                      pcie_write_bw_bps=gpu_pcie_write_bw_bps)
            for i in range(gpu_count)
        ]
        self.nvme: Optional[NvmeDevice] = (
            NvmeDevice(env, name=f"{name}.nvme0") if nvme else None)


class StorageNode(Node):
    """The AEP storage server: PMem namespaces in devdax and fsdax modes."""

    def __init__(self, env: Environment, name: str = "server",
                 cores: int = 72, dram_capacity: int = gib(192),
                 devdax_dimms: int = 3, fsdax_dimms: int = 3,
                 dimm_capacity: int = gib(256)) -> None:
        super().__init__(env, name, cores, dram_capacity)
        self.pmem_devdax = PmemDimm(env, name=f"{name}.pmem.devdax",
                                    dimms=devdax_dimms,
                                    dimm_capacity=dimm_capacity)
        self.pmem_fsdax = PmemDimm(env, name=f"{name}.pmem.fsdax",
                                   dimms=fsdax_dimms,
                                   dimm_capacity=dimm_capacity)

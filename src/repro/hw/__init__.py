"""Simulated hardware: memory devices, GPUs, PMem DIMMs, NVMe, PCIe, nodes.

Every device is byte-addressable through a :class:`~repro.hw.device.MemoryDevice`
address space.  Data is carried as :class:`~repro.hw.content.Content` values:
small payloads are real bytes, large tensor payloads are deterministic
*patterns* that can be sliced, compared, checksummed and (for small windows)
materialized — so a 90 GB GPT checkpoint moves through the full datapath
without allocating 90 GB of host RAM, while remaining bit-exactly verifiable.
"""

from repro.hw.content import (ByteContent, CompositeContent, Content,
                              PatternContent, SegmentBuffer, TornContent,
                              ZeroContent)
from repro.hw.device import Allocation, MemoryDevice
from repro.hw.devices import DramDevice, GpuMemory, NvmeDevice, PmemDimm
from repro.hw.node import ComputeNode, CpuSet, StorageNode

__all__ = [
    "Allocation",
    "ByteContent",
    "CompositeContent",
    "ComputeNode",
    "Content",
    "CpuSet",
    "DramDevice",
    "GpuMemory",
    "MemoryDevice",
    "NvmeDevice",
    "PatternContent",
    "PmemDimm",
    "SegmentBuffer",
    "StorageNode",
    "TornContent",
    "ZeroContent",
]

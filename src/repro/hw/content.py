"""Content values: what the bytes *are*, independent of where they live.

The timing model decides how long a transfer takes; the content model
decides what arrives.  Four kinds:

* :class:`ByteContent` — real bytes, used for metadata, indexes, and any
  payload small enough to materialize.
* :class:`PatternContent` — a deterministic pseudo-random byte stream
  identified by ``(seed, base, size)``.  Slicing is exact (byte *i* of the
  stream is a pure function of ``seed`` and ``base + i``), so a multi-GB
  tensor can be cut into stripes, reassembled, and verified bit-for-bit
  without ever existing in host RAM.
* :class:`ZeroContent` — all zero bytes (fresh allocations).
* :class:`TornContent` — the result of a crash interrupting a write; reads
  as poison and never compares equal to anything, including itself.

Equality materializes when any side is small, otherwise compares canonical
fingerprints; two *different* huge representations fall back to a bounded
windowed comparison (one MATERIALIZE-sized window in flight at a time), so
dedup verification and restore checks on multi-GB tensors never crash.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

import numpy as np

# Largest content we are willing to materialize into real bytes.
MATERIALIZE_LIMIT = 64 * 1024 * 1024

# Window size for comparing two large contents whose fingerprints differ:
# at most one window is materialized per side at any moment.
_COMPARE_CHUNK = 16 * 1024 * 1024

_MULT = np.uint64(0x9E3779B97F4A7C15)
_XOR = np.uint64(0xBF58476D1CE4E5B9)


class Content:
    """Abstract immutable byte-string value of known size."""

    size: int

    def slice(self, offset: int, length: int) -> "Content":
        """Return the sub-content [offset, offset+length)."""
        raise NotImplementedError

    def to_bytes(self) -> bytes:
        """Materialize into real bytes (refuses above MATERIALIZE_LIMIT)."""
        raise NotImplementedError

    def fingerprint(self) -> Tuple:
        """Canonical identity used for large-content equality."""
        raise NotImplementedError

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise ValueError(
                f"slice [{offset}, {offset + length}) outside content of "
                f"size {self.size}")

    def equals(self, other: "Content") -> bool:
        """Value equality; materializes when either side is small."""
        if self.size != other.size:
            return False
        if isinstance(self, TornContent) or isinstance(other, TornContent):
            return False
        if self.fingerprint() == other.fingerprint():
            return True
        if self.size <= MATERIALIZE_LIMIT:
            return self.to_bytes() == other.to_bytes()
        # Two large contents with different canonical forms (e.g. a joined
        # pattern vs a composite of the same bytes): compare one bounded
        # window at a time.  Per window the cheap fingerprint check runs
        # first, so canonical-equal stretches never materialize.
        cursor = 0
        while cursor < self.size:
            step = min(_COMPARE_CHUNK, self.size - cursor)
            mine = self.slice(cursor, step)
            theirs = other.slice(cursor, step)
            if mine.fingerprint() != theirs.fingerprint():
                try:
                    if mine.to_bytes() != theirs.to_bytes():
                        return False
                except ValueError:
                    # A torn sub-part inside a composite: unreadable bytes
                    # are never equal to anything.
                    return False
            cursor += step
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Content):
            return NotImplemented
        return self.equals(other)

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def iter_chunks(self, chunk_size: int = 16 * 1024 * 1024):
        """Yield materialized byte chunks — streaming export of contents
        larger than MATERIALIZE_LIMIT."""
        if chunk_size <= 0 or chunk_size > MATERIALIZE_LIMIT:
            raise ValueError(f"bad chunk size {chunk_size}")
        cursor = 0
        while cursor < self.size:
            step = min(chunk_size, self.size - cursor)
            yield self.slice(cursor, step).to_bytes()
            cursor += step


class ByteContent(Content):
    """Real bytes."""

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self.size = len(self._data)

    def slice(self, offset: int, length: int) -> "ByteContent":
        self._check_range(offset, length)
        return ByteContent(self._data[offset:offset + length])

    def to_bytes(self) -> bytes:
        return self._data

    def fingerprint(self) -> Tuple:
        return ("bytes", hashlib.sha1(self._data).hexdigest())

    def __repr__(self) -> str:
        return f"<ByteContent {self.size}B>"


def pattern_bytes(seed: int, base: int, length: int) -> bytes:
    """The canonical pattern byte stream for ``(seed, base)``, materialized.

    Byte *i* is ``mix(seed, base + i)`` — a SplitMix64-style mix truncated
    to 8 bits — computed vectorized so tests over multi-MB windows stay fast.
    """
    if length == 0:
        return b""
    idx = np.arange(base, base + length, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = (idx + np.uint64(seed & 0xFFFFFFFFFFFFFFFF)) * _MULT
        x ^= x >> np.uint64(31)
        x *= _XOR
        x ^= x >> np.uint64(27)
    return (x & np.uint64(0xFF)).astype(np.uint8).tobytes()


class PatternContent(Content):
    """A deterministic virtual byte stream of arbitrary size."""

    def __init__(self, seed: int, size: int, base: int = 0) -> None:
        if size < 0:
            raise ValueError(f"negative size: {size}")
        self.seed = int(seed)
        self.base = int(base)
        self.size = int(size)

    def slice(self, offset: int, length: int) -> "PatternContent":
        self._check_range(offset, length)
        return PatternContent(self.seed, length, base=self.base + offset)

    def to_bytes(self) -> bytes:
        if self.size > MATERIALIZE_LIMIT:
            raise ValueError(
                f"refusing to materialize {self.size} bytes of pattern")
        return pattern_bytes(self.seed, self.base, self.size)

    def fingerprint(self) -> Tuple:
        return ("pattern", self.seed, self.base, self.size)

    def __repr__(self) -> str:
        return f"<PatternContent seed={self.seed} base={self.base} " \
               f"size={self.size}>"


class ZeroContent(Content):
    """All-zero bytes (fresh allocation, trimmed file hole)."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"negative size: {size}")
        self.size = int(size)

    def slice(self, offset: int, length: int) -> "ZeroContent":
        self._check_range(offset, length)
        return ZeroContent(length)

    def to_bytes(self) -> bytes:
        if self.size > MATERIALIZE_LIMIT:
            raise ValueError(f"refusing to materialize {self.size} zero bytes")
        return bytes(self.size)

    def fingerprint(self) -> Tuple:
        return ("zero", self.size)

    def __repr__(self) -> str:
        return f"<ZeroContent size={self.size}>"


class TornContent(Content):
    """Poison left behind by a crash that interrupted a write.

    Never equal to anything (crash-consistency tests rely on torn data
    being detectable); materializing it is an error, mirroring the fact
    that real recovery code must not trust such bytes.
    """

    def __init__(self, size: int, note: str = "torn write") -> None:
        self.size = int(size)
        self.note = note

    def slice(self, offset: int, length: int) -> "TornContent":
        self._check_range(offset, length)
        return TornContent(length, self.note)

    def to_bytes(self) -> bytes:
        raise ValueError(f"read of torn content ({self.note})")

    def fingerprint(self) -> Tuple:
        return ("torn", id(self))

    def __repr__(self) -> str:
        return f"<TornContent size={self.size} note={self.note!r}>"


class CompositeContent(Content):
    """Concatenation of contents, produced by reads spanning segments."""

    def __init__(self, parts: List[Content]) -> None:
        self.parts = [p for p in parts if p.size > 0]
        self.size = sum(p.size for p in self.parts)

    def slice(self, offset: int, length: int) -> Content:
        self._check_range(offset, length)
        out: List[Content] = []
        cursor = 0
        for part in self.parts:
            lo = max(offset, cursor)
            hi = min(offset + length, cursor + part.size)
            if lo < hi:
                out.append(part.slice(lo - cursor, hi - lo))
            cursor += part.size
        return _simplify(out, length)

    def to_bytes(self) -> bytes:
        if self.size > MATERIALIZE_LIMIT:
            raise ValueError(
                f"refusing to materialize {self.size} composite bytes")
        return b"".join(part.to_bytes() for part in self.parts)

    def fingerprint(self) -> Tuple:
        return ("composite", tuple(p.fingerprint() for p in self.parts))

    def __repr__(self) -> str:
        return f"<CompositeContent {len(self.parts)} parts {self.size}B>"


def concat(parts: List[Content]) -> Content:
    """Concatenate contents into the simplest canonical equivalent.

    Adjacent same-stream patterns and zero runs join, so the result's
    :meth:`Content.fingerprint` is a stable identity for the byte string —
    the property content-hash chunking (dedup) relies on.
    """
    total = sum(part.size for part in parts)
    return _simplify(list(parts), total)


def _simplify(parts: List[Content], total: int) -> Content:
    """Collapse a part list into the simplest equivalent content."""
    merged: List[Content] = []
    for part in parts:
        if part.size == 0:
            continue
        if merged:
            joined = _try_join(merged[-1], part)
            if joined is not None:
                merged[-1] = joined
                continue
        merged.append(part)
    if not merged:
        return ZeroContent(total)
    if len(merged) == 1:
        return merged[0]
    return CompositeContent(merged)


def _try_join(left: Content, right: Content) -> Optional[Content]:
    """Join two adjacent contents when the result stays canonical."""
    if isinstance(left, ZeroContent) and isinstance(right, ZeroContent):
        return ZeroContent(left.size + right.size)
    if (isinstance(left, PatternContent) and isinstance(right, PatternContent)
            and left.seed == right.seed
            and left.base + left.size == right.base):
        return PatternContent(left.seed, left.size + right.size,
                              base=left.base)
    if isinstance(left, ByteContent) and isinstance(right, ByteContent) and \
            left.size + right.size <= MATERIALIZE_LIMIT:
        return ByteContent(left.to_bytes() + right.to_bytes())
    return None


class SegmentBuffer:
    """A writable byte range backed by a sorted list of content segments.

    This is the storage representation used by every device and by the
    PMem pool: writes replace sub-ranges, reads return the covering content
    (simplified).  All operations are O(#segments touched).
    """

    def __init__(self, size: int, fill: Optional[Content] = None) -> None:
        if size < 0:
            raise ValueError(f"negative buffer size: {size}")
        self.size = size
        initial = fill if fill is not None else ZeroContent(size)
        if initial.size != size:
            raise ValueError("fill content size mismatch")
        # (start_offset, content) sorted, contiguous, covering [0, size).
        self._segments: List[Tuple[int, Content]] = (
            [(0, initial)] if size > 0 else [])

    def write(self, offset: int, content: Content) -> None:
        """Replace ``[offset, offset + content.size)`` with *content*."""
        if offset < 0 or offset + content.size > self.size:
            raise ValueError(
                f"write [{offset}, {offset + content.size}) outside buffer "
                f"of size {self.size}")
        if content.size == 0:
            return
        end = offset + content.size
        out: List[Tuple[int, Content]] = []
        for start, seg in self._segments:
            seg_end = start + seg.size
            if seg_end <= offset or start >= end:
                out.append((start, seg))
                continue
            if start < offset:
                out.append((start, seg.slice(0, offset - start)))
            if seg_end > end:
                out.append((end, seg.slice(end - start, seg_end - end)))
        out.append((offset, content))
        out.sort(key=lambda pair: pair[0])
        self._segments = out

    def read(self, offset: int = 0, length: Optional[int] = None) -> Content:
        """Return the content covering ``[offset, offset + length)``."""
        if length is None:
            length = self.size - offset
        if offset < 0 or length < 0 or offset + length > self.size:
            raise ValueError(
                f"read [{offset}, {offset + length}) outside buffer of "
                f"size {self.size}")
        end = offset + length
        parts: List[Content] = []
        for start, seg in self._segments:
            lo = max(start, offset)
            hi = min(start + seg.size, end)
            if lo < hi:
                parts.append(seg.slice(lo - start, hi - lo))
        return _simplify(parts, length)

    def read_bytes(self, offset: int, length: int) -> bytes:
        """Materialized read, for metadata-sized windows."""
        return self.read(offset, length).to_bytes()

    def write_bytes(self, offset: int, data: bytes) -> None:
        """Materialized write, for metadata-sized windows."""
        self.write(offset, ByteContent(data))

    @property
    def segment_count(self) -> int:
        return len(self._segments)

#!/usr/bin/env python3
"""Quickstart: checkpoint and restore one model with Portus.

Builds the paper's testbed (simulated), trains ResNet50 on one V100 with
asynchronous Portus checkpointing every iteration, then "crashes" the
training job and restores the latest checkpoint — verifying the restored
weights bit-for-bit.

Run:  python examples/quickstart.py
"""

from repro.core.async_ckpt import PortusAsyncPolicy
from repro.dnn.models import build_model
from repro.dnn.training import TrainingJob
from repro.harness.cluster import PaperCluster
from repro.units import fmt_bytes, fmt_time


def main() -> None:
    cluster = PaperCluster(seed=42)
    spec = build_model("resnet50")
    print(f"model: resnet50 — {spec.param_count:,} parameters in "
          f"{spec.tensor_count} tensors ({fmt_bytes(spec.total_bytes)})")

    state = {}

    def train_and_crash(env):
        # 1. Register: pins every tensor's GPU memory, ships the
        #    description packet, and builds the three-level index on PMem.
        session = yield from cluster.portus_register("resnet50")
        state["session"] = session

        # 2. Train with asynchronous checkpointing every iteration: the
        #    pull overlaps the next forward+backward pass.
        policy = PortusAsyncPolicy(env, [session], frequency=1)
        job = TrainingJob(env, [session.model],
                          iteration_ns=spec.iteration_ns, hook=policy)
        yield from job.run(25)
        state["job"] = job
        state["policy"] = policy

    cluster.run(train_and_crash)
    job = state["job"]
    policy = state["policy"]
    print(f"trained {job.iterations_done} iterations in "
          f"{fmt_time(job.elapsed_ns)} with {policy.checkpoints_taken} "
          f"checkpoints (total stall: {fmt_time(policy.stall_ns)})")
    util = job.recorders[0].utilization(job.started_at, job.finished_at)
    print(f"GPU utilization: {util * 100:.1f}%  — checkpointing is "
          "effectively free")

    # 3. The job dies.  Restore into the existing session (a real restart
    #    would re-register an empty model first; see distributed_gpt.py).
    def recover(env):
        session = state["session"]
        session.model.update_step(9999)  # trash the weights
        step = yield from session.restore()
        return step

    step = cluster.run(recover)
    session = state["session"]
    contents = {t.name: t.content() for t in session.model.tensors}
    mismatched = session.model.verify_against(contents, step=step)
    print(f"restored step {step}; "
          f"{'bit-exact' if not mismatched else 'MISMATCH: ' + str(mismatched)}")


if __name__ == "__main__":
    main()

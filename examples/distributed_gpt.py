#!/usr/bin/env python3
"""Distributed large-model checkpointing: GPT-8.3B on 16 GPUs.

Shards a Megatron-style GPT (tensor parallel 8 x pipeline parallel 2)
across the two Client-Ampere nodes and registers the 16 shards as one
*parallel group*: the sharded layout is persisted next to the data, the
shards dump concurrently, and a step only becomes visible once a single
group-commit record lands in PMem after every shard is DONE.

The scenario then power-fails the storage server mid-way through the
step-20 group dump.  Before groups, this was exactly the torn-restore
bug: some shards recovered step 20, others step 10, and per-shard
restore silently reassembled a model that never existed.  With the
group commit, restore pins every shard to the newest *fully committed*
step — all 16 shards come back at step 10, bit-exactly.

Run:  python examples/distributed_gpt.py
"""

from repro.core.group import register_group
from repro.dnn.gpt import GPT_CONFIGS, shard_gpt
from repro.dnn.layout import gpt_layout
from repro.dnn.tensor import ModelInstance
from repro.errors import ReproError
from repro.harness.cluster import PaperCluster
from repro.units import fmt_bytes, fmt_time

TP, PP = 8, 2


def main() -> None:
    cluster = PaperCluster(seed=7)
    config = GPT_CONFIGS["gpt-8.3b"]
    shards = shard_gpt(config, tensor_parallel=TP, pipeline_parallel=PP)
    layout = gpt_layout(config, TP, PP)
    print(f"{config.name}: {config.param_count() / 1e9:.2f}B parameters, "
          f"{len(shards)} shards across 2 nodes x 8 A40s")

    def register_shards(env, client_of):
        """Materialize + register every shard; returns the sessions."""
        instances, sessions = [], []
        for index, shard in enumerate(shards):
            node = cluster.amperes[index // 8]
            instance = ModelInstance.materialize(
                shard.name, shard.tensors, node.gpus[index % 8],
                model_seed=index)
            session = yield from client_of(node).register(instance)
            instances.append(instance)
            sessions.append(session)
        return instances, sessions

    def scenario(env):
        clients = {}

        def client_of(node):
            if node.name not in clients:
                clients[node.name] = cluster.portus_client(node)
            return clients[node.name]

        instances, sessions = yield from register_shards(env, client_of)
        group = yield from register_group(client_of(cluster.amperes[0]),
                                          config.name, layout, sessions)
        print(f"group {group.name!r}: {len(group.members)} members, "
              f"layout tp={layout.tp} pp={layout.pp}")

        # Group dump at step 10: all shards pull concurrently, then one
        # commit record makes the step visible.
        for instance in instances:
            instance.update_step(10)
        start = env.now
        yield from group.dump(10)
        total = sum(i.total_bytes for i in instances)
        print(f"group dump @step 10: {fmt_bytes(total)} in "
              f"{fmt_time(env.now - start)} "
              f"({total / ((env.now - start) / 1e9) / 1e9:.2f} GB/s "
              "aggregate)")

        # Start the step-20 group dump, then power-fail the storage
        # server 200 ms into a multi-second pull.
        for instance in instances:
            instance.update_step(20)
        dump = env.process(group.dump(20), name="group-dump-20")
        yield env.timeout(int(0.2e9))
        print("power failure on the storage server mid-group-dump ...")
        cluster.crash_server()
        try:
            yield dump
            raise AssertionError("step-20 dump survived the power cut")
        except ReproError as exc:
            print(f"step-20 group dump torn: {type(exc).__name__}")

        cluster.restart_daemon()
        print(f"daemon recovered {len(cluster.daemon.models())} shard "
              f"indexes from PMem")

        # Recover: fresh sessions, re-bind the group, one group restore.
        clients.clear()
        instances, sessions = yield from register_shards(env, client_of)
        group = yield from register_group(client_of(cluster.amperes[0]),
                                          config.name, layout, sessions)
        step = yield from group.restore()
        steps = {instance.step for instance in instances}
        assert steps == {step}, f"torn group surfaced: steps {steps}"
        mismatches = 0
        for instance in instances:
            contents = {t.name: t.content() for t in instance.tensors}
            mismatches += len(instance.verify_against(contents, step=step))
        return step, len(instances), mismatches

    step, count, mismatches = cluster.run(scenario)
    assert step == 10, step
    quality = "bit-exact" if mismatches == 0 else f"{mismatches} MISMATCHES"
    print(f"all {count} shards restored the same committed step {step} "
          f"({quality}) — the torn step-20 dump was correctly ignored")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Distributed large-model checkpointing: GPT-8.3B on 16 GPUs.

Shards a Megatron-style GPT (tensor parallel 8 x pipeline parallel 2)
across the two Client-Ampere nodes, checkpoints all 16 shards
concurrently through one Portus daemon, power-fails the storage server
mid-checkpoint, then recovers: the daemon rebuilds its index from PMem
and every shard restores the last *completed* checkpoint bit-exactly —
the double-mapping guarantee.

Run:  python examples/distributed_gpt.py
"""

from repro.core import protocol
from repro.dnn.gpt import GPT_CONFIGS, shard_gpt
from repro.dnn.tensor import ModelInstance
from repro.sim import AllOf
from repro.harness.cluster import PaperCluster
from repro.units import fmt_bytes, fmt_time


def main() -> None:
    cluster = PaperCluster(seed=7)
    config = GPT_CONFIGS["gpt-8.3b"]
    shards = shard_gpt(config, tensor_parallel=8, pipeline_parallel=2)
    print(f"{config.name}: {config.param_count() / 1e9:.2f}B parameters, "
          f"{len(shards)} shards across 2 nodes x 8 A40s")

    state = {"instances": [], "sessions": []}

    def setup_and_checkpoint(env):
        # Materialize each shard on its GPU and register it; each MIndex
        # maps to one model shard, exactly as the paper describes.
        for index, shard in enumerate(shards):
            node = cluster.amperes[index // 8]
            instance = ModelInstance.materialize(
                shard.name, shard.tensors, node.gpus[index % 8],
                model_seed=index)
            session = yield from cluster.portus_register(instance,
                                                         node=node)
            state["instances"].append(instance)
            state["sessions"].append(session)

        # Checkpoint step 10 on all shards concurrently.
        for instance in state["instances"]:
            instance.update_step(10)
        start = env.now
        pulls = [env.process(session.checkpoint(10))
                 for session in state["sessions"]]
        yield AllOf(env, pulls)
        total = sum(i.total_bytes for i in state["instances"])
        print(f"checkpoint @step 10: {fmt_bytes(total)} in "
              f"{fmt_time(env.now - start)} "
              f"({total / ((env.now - start) / 1e9) / 1e9:.2f} GB/s "
              "aggregate)")

        # Start a second checkpoint (step 20) but crash mid-pull.
        for instance in state["instances"]:
            instance.update_step(20)
        for session in state["sessions"]:
            message, size = protocol.do_checkpoint(session.model.name, 20)
            yield from session.conn.send(message, wire_size=size)
        yield env.timeout(int(0.2e9))  # 200 ms into a multi-second pull

    cluster.run(setup_and_checkpoint)
    print("power failure on the storage server mid-checkpoint ...")
    cluster.crash_server()
    cluster.restart_daemon()
    print(f"daemon recovered {len(cluster.daemon.models())} shard indexes "
          "from PMem")

    def restore_all(env):
        steps = []
        mismatches = 0
        client_cache = {}
        for index, instance in enumerate(state["instances"]):
            node = cluster.amperes[index // 8]
            client = client_cache.get(node.name)
            if client is None:
                client = cluster.portus_client(node)
                client_cache[node.name] = client
            session = yield from client.register(instance)
            step = yield from session.restore()
            steps.append(step)
            contents = {t.name: t.content() for t in instance.tensors}
            mismatches += len(instance.verify_against(contents, step=step))
        return steps, mismatches

    steps, mismatches = cluster.run(restore_all)
    assert set(steps) == {10}, steps
    print(f"all {len(steps)} shards restored step 10 "
          f"({'bit-exact' if mismatches == 0 else f'{mismatches} MISMATCHES'})"
          " — the interrupted step-20 checkpoint was correctly ignored")


if __name__ == "__main__":
    main()

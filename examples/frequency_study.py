#!/usr/bin/env python3
"""How often *can* you checkpoint?  The paper's core trade, quantified.

CheckFreq tunes its frequency so checkpoint overhead stays under a
budget; the slower the persist, the rarer the checkpoints and the more
work a failure destroys.  This example computes, for each Table II model,
the finest checkpoint cadence each system supports at a 3.5 % overhead
budget — most models sustain Portus checkpoints every single iteration,
the paper's "iteration-based fine-grained checkpointing with almost zero
overhead".

Run:  python examples/frequency_study.py
"""

from repro.baselines.checkfreq import recommend_frequency
from repro.baselines.torch_save import CUDA_D2H_PAGEABLE_BPS
from repro.dnn.models import MODEL_BUILDERS, build_model
from repro.harness.calibration import (baseline_checkpoint_ns_per_byte,
                                       portus_checkpoint_ns_per_byte)
from repro.harness.report import render_table
from repro.units import fmt_time


def main() -> None:
    rows = []
    for name in sorted(MODEL_BUILDERS):
        spec = build_model(name)
        snapshot_ns = int(spec.total_bytes / CUDA_D2H_PAGEABLE_BPS * 1e9)
        persist_ns = int(spec.total_bytes
                         * baseline_checkpoint_ns_per_byte()) - snapshot_ns
        portus_ns = int(spec.total_bytes * portus_checkpoint_ns_per_byte())
        k_checkfreq = recommend_frequency(spec.iteration_ns, snapshot_ns,
                                          persist_ns,
                                          overhead_budget=0.035)
        # Portus async: the "snapshot" is the pull overlapped with F+B;
        # residual stall is only what exceeds the F+B window.
        fb_window = int(spec.iteration_ns * 0.8)
        stall_ns = max(0, portus_ns - fb_window)
        k_portus = recommend_frequency(spec.iteration_ns, stall_ns, 0,
                                       overhead_budget=0.035)
        rows.append([name, fmt_time(spec.iteration_ns),
                     fmt_time(persist_ns + snapshot_ns),
                     fmt_time(portus_ns),
                     f"every {k_checkfreq}", f"every {k_portus}"])
    print(render_table(
        "Finest checkpoint cadence at a 3.5% overhead budget (iterations)",
        ["model", "iter time", "baseline ckpt", "portus ckpt",
         "checkfreq", "portus"], rows))
    print("\nWherever the pull fits inside one iteration's F+B window, "
          "Portus sustains\ncheckpoint-every-iteration at effectively zero "
          "overhead; models whose size\noutruns their iteration time "
          "(alexnet, vit_l_32) still checkpoint 5-10x more\nfinely than "
          "CheckFreq can afford.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Easy sharing: export a Portus checkpoint to a generic file (§IV-b).

Checkpoints live inside the three-level index on PMem, not as files.
Portusctl bridges that to the wider ecosystem: ``view`` lists what is on
a device; ``dump`` serializes a model's newest valid checkpoint into the
generic (torch.save-like) format, which any framework-side loader can
parse.  This example checkpoints BERT, dumps it, re-parses the dump and
verifies every tensor, then runs the repacking tool and shows the space
coming back.

Run:  python examples/share_checkpoint.py
"""

from repro.core.portusctl import dump, format_view, view
from repro.core.repack import repack
from repro.dnn.serialize import deserialize_state_dict
from repro.harness.cluster import PaperCluster
from repro.units import fmt_bytes


def main() -> None:
    cluster = PaperCluster(seed=5)
    state = {}

    def train(env):
        session = yield from cluster.portus_register("bert_large")
        for step in (10, 20):
            session.model.update_step(step)
            yield from session.checkpoint(step)
        state["session"] = session

    cluster.run(train)
    print("after two checkpoints (double mapping keeps both):")
    print(format_view(view(cluster.portus_pool)))

    image = dump(cluster.portus_pool, "bert_large")
    print(f"\ndumped bert_large to a generic checkpoint image: "
          f"{fmt_bytes(image.size)}")
    parsed = deserialize_state_dict(image)
    model = state["session"].model
    bad = [t.name for t in model.tensors
           if not parsed[t.name][1].equals(t.expected_content(20))]
    print(f"re-parsed {len(parsed)} tensors; "
          f"{'all bit-exact at step 20' if not bad else f'MISMATCH: {bad}'}")

    report = repack(cluster.portus_pool, cluster.daemon.table)
    print(f"\nrepacked: reclaimed {fmt_bytes(report.bytes_reclaimed)} "
          f"from {len(report.models_compacted)} model(s)")
    print(format_view(view(cluster.portus_pool)))


if __name__ == "__main__":
    main()

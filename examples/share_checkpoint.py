#!/usr/bin/env python3
"""Easy sharing: export a Portus checkpoint to a generic file (§IV-b).

Checkpoints live inside the three-level index on PMem, not as files.
Portusctl bridges that to the wider ecosystem: ``view`` lists what is on
a device; ``dump`` serializes a model's newest valid checkpoint into the
generic (torch.save-like) format, which any framework-side loader can
parse.  This example checkpoints BERT, dumps it, re-parses the dump and
verifies every tensor, then runs the repacking tool and shows the space
coming back.

The second half shows the *other* kind of sharing: two tenants
fine-tuning the same pretrained base register with ``dedup=True``, so
their checkpoints share backbone chunks in the pool-wide refcounted
chunk store — the second tenant's checkpoint moves only its own head
bytes, and both restore bit-exactly.

Run:  python examples/share_checkpoint.py
"""

from repro.core.portusctl import dump, format_view, view
from repro.core.repack import repack
from repro.dnn.serialize import deserialize_state_dict
from repro.dnn.tensor import ModelInstance
from repro.dnn.zoo import build_zoo_model, head_tensor_names
from repro.harness.cluster import PaperCluster
from repro.pmem.chunks import ChunkStore
from repro.units import fmt_bytes


def main() -> None:
    cluster = PaperCluster(seed=5)
    state = {}

    def train(env):
        session = yield from cluster.portus_register("bert_large")
        for step in (10, 20):
            session.model.update_step(step)
            yield from session.checkpoint(step)
        state["session"] = session

    cluster.run(train)
    print("after two checkpoints (double mapping keeps both):")
    print(format_view(view(cluster.portus_pool)))

    image = dump(cluster.portus_pool, "bert_large")
    print(f"\ndumped bert_large to a generic checkpoint image: "
          f"{fmt_bytes(image.size)}")
    parsed = deserialize_state_dict(image)
    model = state["session"].model
    bad = [t.name for t in model.tensors
           if not parsed[t.name][1].equals(t.expected_content(20))]
    print(f"re-parsed {len(parsed)} tensors; "
          f"{'all bit-exact at step 20' if not bad else f'MISMATCH: {bad}'}")

    report = repack(cluster.portus_pool, cluster.daemon.table)
    print(f"\nrepacked: reclaimed {fmt_bytes(report.bytes_reclaimed)} "
          f"from {len(report.models_compacted)} model(s)")
    print(format_view(view(cluster.portus_pool)))

    shared_base_finetunes(cluster)


def shared_base_finetunes(cluster: PaperCluster) -> None:
    """Two tenants, one pretrained base: dedup shares the backbone."""
    spec = build_zoo_model("vit_b_32")
    head = head_tensor_names(spec)
    replies = {}
    sessions = {}

    def finetune(env):
        for tenant, gpu, step in (("tenant-a", 0, 2), ("tenant-b", 1, 3)):
            instance = ModelInstance.materialize(
                tenant, spec.tensors, cluster.volta.gpus[gpu],
                model_seed=42)  # the same pretrained base for both
            session = yield from cluster.portus_register(instance,
                                                         dedup=True)
            instance.update_step(1)            # the shared base weights
            instance.update_step(step, only=head)  # each tenant's head
            replies[tenant] = yield from session.checkpoint(step)
            sessions[tenant] = (session, step)

    cluster.run(finetune)
    first, second = replies["tenant-a"], replies["tenant-b"]
    store = ChunkStore.attach(cluster.portus_pool)
    saved = second["bytes_logical"] - second["bytes_pulled"]
    print(f"\ntwo vit_b_32 fine-tunes of one base, dedup layout:")
    print(f"  tenant-a first checkpoint pulled "
          f"{fmt_bytes(first['bytes_pulled'])} "
          f"({first['chunks_new']} new chunks)")
    print(f"  tenant-b checkpoint pulled "
          f"{fmt_bytes(second['bytes_pulled'])} of "
          f"{fmt_bytes(second['bytes_logical'])} logical — dedup saved "
          f"{fmt_bytes(saved)} ({second['chunks_shared']} shared chunks)")
    print(f"  store: {fmt_bytes(store.stored_bytes)} physical backs "
          f"{fmt_bytes(store.logical_bytes)} logical")

    def roll_back(env):
        bad = []
        for tenant, (session, step) in sorted(sessions.items()):
            session.model.update_step(step + 5)  # diverge, then restore
            restored = yield from session.restore()
            assert restored == step
            for tensor in session.model.tensors:
                want = step if tensor.name in head else 1
                if not tensor.content().equals(
                        tensor.expected_content(want)):
                    bad.append(f"{tenant}:{tensor.name}")
        return bad

    bad = cluster.run(roll_back)
    print(f"  restored: "
          f"{'both tenants bit-exact' if not bad else f'MISMATCH: {bad}'}")


if __name__ == "__main__":
    main()

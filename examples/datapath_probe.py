#!/usr/bin/env python3
"""Probe the raw Portus datapath (the Fig. 10 experiment).

Sweeps one-sided RDMA READ/WRITE sizes between every device pair
(client DRAM / client GPU x server DRAM / server PMem) and prints the
bandwidth and latency curves: GPU reads cap at 5.8 GB/s (the BAR effect),
writes don't, PMem-vs-DRAM targets don't matter, and everything saturates
past 512 KiB messages.

Run:  python examples/datapath_probe.py
"""

from repro.harness.experiments import fig10_datapath
from repro.harness.report import render_series
from repro.units import fmt_bandwidth, fmt_bytes, fmt_time


def main() -> None:
    result = fig10_datapath()
    labels = [fmt_bytes(size) for size in result["sizes"]]
    print(render_series("one-sided READ bandwidth (server pulls)",
                        "msg size", result["read_bw"], labels,
                        fmt=fmt_bandwidth))
    print(render_series("one-sided READ latency",
                        "msg size", result["read_latency"], labels,
                        fmt=fmt_time))
    print(render_series("one-sided WRITE bandwidth (server pushes)",
                        "msg size", result["write_bw"], labels,
                        fmt=fmt_bandwidth))
    print(render_series("one-sided WRITE latency",
                        "msg size", result["write_latency"], labels,
                        fmt=fmt_time))

    gpu_peak = result["read_bw"]["gpu->dram"][-1]
    dram_peak = result["read_bw"]["dram->dram"][-1]
    print(f"\nGPU BAR read peak: {fmt_bandwidth(gpu_peak)} "
          f"({(1 - gpu_peak / dram_peak) * 100:.0f}% below DRAM's "
          f"{fmt_bandwidth(dram_peak)})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Multi-tenant checkpointing: N training jobs share a checkpoint fleet.

The paper's three-level index exists to serve many concurrent tenants:
each model gets its own MIndex and TensorData regions, workers are
independent, and only the ModelTable is shared (updated lock-free).
This example runs N CV jobs with different iteration times and
checkpoint frequencies against a Portus deployment, then shows the
daemons' view and the fair sharing of the pull bandwidth.

The tenant table comes from :func:`repro.fleet.workload.generate_tenants`
— the same generator ``benchmarks/bench_fleet.py`` scales to ~100
tenants — and the default four rows reproduce the classic hard-coded
table (resnet50/vgg19_bn/swin_b/vit_l_32 at frequencies 1/2/2/4).

Run:  python examples/multi_tenant.py
      python examples/multi_tenant.py --tenants 8 --daemons 2
      python examples/multi_tenant.py --tenants 6 --seed 7 --iters 8
"""

import argparse

from repro.core.async_ckpt import PortusAsyncPolicy
from repro.core.portusctl import format_view, view
from repro.dnn.zoo import build_zoo_model
from repro.dnn.training import TrainingJob
from repro.fleet import FleetClient, generate_tenants
from repro.fleet.workload import place_on_cluster
from repro.harness.cluster import PaperCluster
from repro.sim import AllOf
from repro.units import fmt_bytes, fmt_time


def main() -> None:
    parser = argparse.ArgumentParser(
        description="N tenants checkpointing against a Portus fleet")
    parser.add_argument("--tenants", type=int, default=4,
                        help="number of tenant jobs (default 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload-table seed (default 0)")
    parser.add_argument("--daemons", type=int, default=1,
                        help="storage shards / daemons (default 1)")
    parser.add_argument("--iters", type=int, default=12,
                        help="training iterations per tenant (default 12)")
    args = parser.parse_args()

    cluster = PaperCluster(seed=99, storage_nodes=args.daemons)
    fleet = FleetClient(cluster)
    tenants = generate_tenants(args.tenants, seed=args.seed)
    jobs = {}

    def run_tenants(env):
        procs = []
        for spec in tenants:
            node, gpu = place_on_cluster(cluster, spec)
            session = yield from fleet.register_spec(spec)
            policy = PortusAsyncPolicy(env, [session],
                                       frequency=spec.frequency)
            model_spec = build_zoo_model(spec.model)
            job = TrainingJob(env, [session.model],
                              iteration_ns=model_spec.iteration_ns,
                              hook=policy, name=spec.name)
            jobs[spec.name] = (spec, job, policy)
            procs.append(env.process(job.run(args.iters),
                                     name=f"job-{spec.name}"))
        yield AllOf(env, procs)

    cluster.run(run_tenants)

    print("tenant results:")
    for name, (spec, job, policy) in jobs.items():
        util = job.recorders[0].utilization(job.started_at,
                                            job.finished_at)
        shard = fleet.shard_of(spec.name, spec.instance_name)
        print(f"  {name} {spec.model:14} {job.iterations_done} iters in "
              f"{fmt_time(job.elapsed_ns)}  ckpts={policy.checkpoints_taken}"
              f"  stall={fmt_time(policy.stall_ns)}  util={util * 100:.1f}%"
              f"  shard={shard.name}")

    for shard in cluster.shards:
        print(f"\ndaemon: {shard.name} "
              f"{shard.daemon.checkpoints_completed} checkpoints, "
              f"{fmt_bytes(shard.daemon.bytes_pulled)} pulled")
        print(f"\nPMem contents ({shard.name}, portusctl view):")
        print(format_view(view(shard.pool)))

    print("DONE")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Multi-tenant checkpointing: four training jobs share one daemon.

The paper's three-level index exists to serve many concurrent tenants:
each model gets its own MIndex and TensorData regions, workers are
independent, and only the ModelTable is shared (updated lock-free).
This example runs four CV jobs with different iteration times and
checkpoint frequencies against a single Portus daemon, then shows the
daemon's view and the fair sharing of the pull bandwidth.

Run:  python examples/multi_tenant.py
"""

from repro.core.async_ckpt import PortusAsyncPolicy
from repro.core.portusctl import format_view, view
from repro.dnn.models import build_model
from repro.dnn.training import TrainingJob
from repro.harness.cluster import PaperCluster
from repro.sim import AllOf
from repro.units import fmt_bytes, fmt_time, msecs

TENANTS = [
    # (model, gpu, checkpoint frequency)
    ("resnet50", 0, 1),
    ("vgg19_bn", 1, 2),
    ("swin_b", 2, 2),
    ("vit_l_32", 3, 4),
]


def main() -> None:
    cluster = PaperCluster(seed=99)
    jobs = {}

    def run_tenants(env):
        procs = []
        for model_name, gpu, frequency in TENANTS:
            session = yield from cluster.portus_register(model_name,
                                                         gpu=gpu)
            policy = PortusAsyncPolicy(env, [session], frequency=frequency)
            spec = build_model(model_name)
            job = TrainingJob(env, [session.model],
                              iteration_ns=spec.iteration_ns, hook=policy,
                              name=model_name)
            jobs[model_name] = (job, policy)
            procs.append(env.process(job.run(12), name=f"job-{model_name}"))
        yield AllOf(env, procs)

    cluster.run(run_tenants)

    print("tenant results:")
    for model_name, (job, policy) in jobs.items():
        util = job.recorders[0].utilization(job.started_at,
                                            job.finished_at)
        print(f"  {model_name:14} {job.iterations_done} iters in "
              f"{fmt_time(job.elapsed_ns)}  ckpts={policy.checkpoints_taken}"
              f"  stall={fmt_time(policy.stall_ns)}  util={util * 100:.1f}%")

    print(f"\ndaemon: {cluster.daemon.checkpoints_completed} checkpoints, "
          f"{fmt_bytes(cluster.daemon.bytes_pulled)} pulled")
    print("\nPMem contents (portusctl view):")
    print(format_view(view(cluster.portus_pool)))


if __name__ == "__main__":
    main()

"""Fig. 14: dumping one GPT checkpoint, torch.save vs Portus (16 A40s).

Paper: torch.save to shared BeeGFS takes >120 s at 22.4 B parameters
(89.6 GB); Portus takes ~15 s — an average 8.18x speedup across the
1.5 B -> 22.4 B sweep.
"""

import statistics

from repro.harness.experiments import fig14_gpt_dump
from repro.harness.projections import paper_projection_table
from repro.harness.report import render_table
from repro.units import fmt_bytes, fmt_time

from conftest import run_once


def test_fig14_gpt_dump_sweep(benchmark, shared_results):
    result = run_once(benchmark, "fig14", fig14_gpt_dump, shared_results)
    rows = []
    ratios = []
    for i, name in enumerate(result["configs"]):
        ratio = result["torch_save"][i] / result["portus"][i]
        ratios.append(ratio)
        rows.append([name, f"{result['params_b'][i]:.1f}B",
                     fmt_bytes(result["bytes"][i]),
                     fmt_time(result["torch_save"][i]),
                     fmt_time(result["portus"][i]),
                     f"{ratio:.2f}x"])
    print(render_table(
        "Fig. 14: GPT checkpoint dump (paper: >120s vs ~15s, avg 8.18x)",
        ["config", "params", "ckpt size", "torch.save", "portus",
         "speedup"], rows))

    # The paper's §V-E projection: hours saved checkpointing every 30 min.
    i_big = result["configs"].index("gpt-22.4b")
    saved = paper_projection_table(result["torch_save"][i_big],
                                   result["portus"][i_big])
    print("\nprojected wall-clock saved at 1 ckpt / 30 min "
          "(paper: >1.5h per day): "
          + ", ".join(f"{label}: {hours:.1f}h"
                      for label, hours in saved.items()))
    assert saved["24h"] > 1.2  # the paper's ">1.5 hours" band

    # The headline point: >120 s vs ~15 s at 22.4B.
    assert result["torch_save"][i_big] > 120e9
    assert 10e9 < result["portus"][i_big] < 20e9
    # Speedup factor in the paper's band across the sweep.
    assert 6.0 < statistics.mean(ratios) < 14.0
    # Both curves grow monotonically with model size.
    assert result["torch_save"] == sorted(result["torch_save"])
    assert result["portus"] == sorted(result["portus"])

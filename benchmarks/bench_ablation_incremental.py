"""Extension: incremental (dirty-tensor) checkpointing.

Check-N-Run (NSDI '22, cited in §VII) shows incremental checkpoints pay
off when most parameters are frozen.  Portus's per-tensor index makes
the extension natural: the client names the dirty tensors, the daemon
pulls only those over RDMA and completes the new version with local
PMem copies from the previous one.  This bench fine-tunes ViT-L/32's
classifier head and compares full vs incremental checkpoint time.
"""

from repro.harness.cluster import PaperCluster
from repro.harness.report import render_table
from repro.units import fmt_bytes, fmt_time

from conftest import run_once


def _run_ablation():
    cluster = PaperCluster(seed=220)
    holder = {}

    def scenario(env):
        session = yield from cluster.portus_register("vit_l_32")
        model = session.model
        model.update_step(1)
        start = env.now
        yield from session.checkpoint(1)
        holder["full_ns"] = env.now - start
        dirty = ["heads.head.weight", "heads.head.bias"]
        pulled_before = cluster.daemon.bytes_pulled
        model.update_step(2, only=dirty)
        start = env.now
        yield from session.checkpoint(2, dirty=dirty)
        holder["incremental_ns"] = env.now - start
        holder["dirty_bytes"] = cluster.daemon.bytes_pulled - pulled_before
        holder["total_bytes"] = model.total_bytes

    cluster.run(scenario)
    return holder


def test_ablation_incremental_checkpoint(benchmark, shared_results):
    results = run_once(benchmark, "ablation_incremental", _run_ablation,
                       shared_results)
    rows = [
        ["full", fmt_bytes(results["total_bytes"]),
         fmt_time(results["full_ns"])],
        ["incremental (head only)", fmt_bytes(results["dirty_bytes"]),
         fmt_time(results["incremental_ns"])],
    ]
    print(render_table(
        "Extension: incremental checkpointing, ViT-L/32 head fine-tune",
        ["mode", "bytes over the wire", "checkpoint time"], rows))
    # Wire traffic drops to just the head...
    assert results["dirty_bytes"] < results["total_bytes"] / 100
    # ...and wall time drops to the local-copy bound.
    assert results["incremental_ns"] < results["full_ns"] * 0.75

"""Fig. 13: breakdown analysis of BERT checkpointing time.

Paper: RDMA transmission dominates Portus's (short) checkpoint time;
serialization + cuMemcpy contribute 46.5 % to ext4-NVMe and 57.2 % to
BeeGFS-PMem; ext4-NVMe spends 53.7 % of its time interacting with block
devices through kernel crossings; and Portus's one-sided transport beats
BeeGFS's two-sided RPCoRDMA.
"""

from repro.harness.experiments import fig13_bert_breakdown
from repro.harness.report import render_breakdown
from repro.units import fmt_time

from conftest import run_once


def test_fig13_bert_breakdown(benchmark, shared_results):
    result = run_once(benchmark, "fig13", fig13_bert_breakdown,
                      shared_results)
    for option in ("ext4_nvme", "beegfs_pmem", "portus"):
        total = result[f"{option}_total_ns"]
        print(render_breakdown(
            f"Fig. 13: BERT checkpoint via {option} "
            f"(total {fmt_time(total)})", result[option]))

    # Portus is one phase: the RDMA pull is the whole checkpoint.
    assert result["portus"] == {"rdma_pull": 1.0}
    # Portus total is far below both baselines.
    assert result["portus_total_ns"] * 5 < result["ext4_nvme_total_ns"]
    assert result["portus_total_ns"] * 5 < result["beegfs_pmem_total_ns"]
    # Serialization + cuMemcpy shares (paper: 46.5% / 57.2%).
    ext4_share = result["ext4_nvme"]["serialization+cuMemcpy"]
    beegfs_share = result["beegfs_pmem"]["serialization+cuMemcpy"]
    # Note: the paper's Fig. 13 shares (46.5% ext4 / 57.2% BeeGFS) are in
    # mild tension with its Fig. 11 (near-equal totals for the two
    # baselines); our calibration matches Fig. 11, which puts both
    # serialization+cuMemcpy shares in the mid-50s.
    assert abs(ext4_share - 0.465) < 0.13
    assert abs(beegfs_share - 0.572) < 0.06
    # ext4 spends roughly half its time in block-device kernel crossings
    # (paper: 53.7%).
    assert abs(result["ext4_nvme"]["block_io_kernel"] - 0.537) < 0.13

"""Fig. 13: breakdown analysis of BERT checkpointing time.

Paper: RDMA transmission dominates Portus's (short) checkpoint time;
serialization + cuMemcpy contribute 46.5 % to ext4-NVMe and 57.2 % to
BeeGFS-PMem; ext4-NVMe spends 53.7 % of its time interacting with block
devices through kernel crossings; and Portus's one-sided transport beats
BeeGFS's two-sided RPCoRDMA.
"""

import json
import os

from repro.harness.experiments import (fig13_bert_breakdown,
                                       fig13_portus_traced)
from repro.harness.report import render_breakdown, render_metrics
from repro.units import fmt_time

from conftest import run_once


def test_fig13_bert_breakdown(benchmark, shared_results):
    result = run_once(benchmark, "fig13", fig13_bert_breakdown,
                      shared_results)
    for option in ("ext4_nvme", "beegfs_pmem", "portus"):
        total = result[f"{option}_total_ns"]
        print(render_breakdown(
            f"Fig. 13: BERT checkpoint via {option} "
            f"(total {fmt_time(total)})", result[option]))

    # Portus is one phase: the RDMA pull is the whole checkpoint.
    assert result["portus"] == {"rdma_pull": 1.0}
    # Portus total is far below both baselines.
    assert result["portus_total_ns"] * 5 < result["ext4_nvme_total_ns"]
    assert result["portus_total_ns"] * 5 < result["beegfs_pmem_total_ns"]
    # Serialization + cuMemcpy shares (paper: 46.5% / 57.2%).
    ext4_share = result["ext4_nvme"]["serialization+cuMemcpy"]
    beegfs_share = result["beegfs_pmem"]["serialization+cuMemcpy"]
    # Note: the paper's Fig. 13 shares (46.5% ext4 / 57.2% BeeGFS) are in
    # mild tension with its Fig. 11 (near-equal totals for the two
    # baselines); our calibration matches Fig. 11, which puts both
    # serialization+cuMemcpy shares in the mid-50s.
    assert abs(ext4_share - 0.465) < 0.13
    assert abs(beegfs_share - 0.572) < 0.06
    # ext4 spends roughly half its time in block-device kernel crossings
    # (paper: 53.7%).
    assert abs(result["ext4_nvme"]["block_io_kernel"] - 0.537) < 0.13


def test_fig13_portus_traced_breakdown(benchmark, shared_results,
                                       trace_out_dir):
    """The same Portus checkpoint, phase-resolved from the span tree.

    fig13_portus_traced() itself asserts the zero-cost contract (traced
    and untraced runs are bit-identical in simulated time); here we
    check the span-derived phases reproduce the paper's story — the
    RDMA pull *is* the checkpoint — and that the exported Chrome trace
    is valid, loadable JSON.
    """
    result = run_once(benchmark, "fig13_traced", fig13_portus_traced,
                      shared_results)
    print(render_breakdown(
        f"Fig. 13 (traced): Portus BERT checkpoint phases "
        f"(total {fmt_time(result['total_ns'])})", result["shares"]))
    print(render_metrics("Portus deployment metrics",
                         result["metrics"]))

    assert result["bit_identical"]
    # The pull dominates; every phase accounted, nothing negative.
    assert result["shares"]["rdma_pull"] > 0.95
    assert all(share >= 0 for share in result["shares"].values())
    assert abs(sum(result["shares"].values()) - 1.0) < 1e-9
    # The trace is valid Chrome trace_event JSON with span + metadata
    # events for every layer of the path.
    trace = json.loads(result["chrome_trace_json"])
    events = trace["traceEvents"]
    names = {e["name"] for e in events}
    assert {"client.DO_CHECKPOINT", "daemon.DO_CHECKPOINT",
            "engine.read", "wr.read"} <= names
    assert all({"ph", "pid", "tid", "name"} <= set(e) for e in events)
    # Metrics made it into the result for report merging.
    assert result["metrics"]["daemon.checkpoints_completed"]["value"] == 1
    assert result["metrics"]["daemon.checkpoint_latency_ns"]["count"] == 1
    if trace_out_dir is not None:
        path = os.path.join(trace_out_dir, "fig13_portus.json")
        with open(path, "w") as handle:
            handle.write(result["chrome_trace_json"])
        print(f"chrome trace written to {path}")

"""Parallel-group dump vs serial member dumps: what the group buys.

A TP x PP group dumps all member shards concurrently and makes the
step visible with one two-phase commit record; the baseline dumps the
same members one after another and then commits the same record (same
final visibility, serialized data path).  Two regimes, measured
separately because they answer different questions:

* **latency-bound** — 16 small shards, several steps.  Per-member
  control-plane round trips (begin/pull/commit) dominate, and the
  group's concurrent pulls collapse them: this is the regime where a
  wide-TP model checkpointing frequently lives, and where the speedup
  acceptance bar applies (>= 1.5x).
* **bandwidth-bound** — a GPT-1.5B sharded 8x2 across two client
  nodes.  The storage server's ingest bandwidth is the bottleneck for
  any dump strategy, so the honest claim is not a speedup but a
  non-regression: the group dump's aggregate bandwidth must not fall
  below the serial baseline's (the two-phase commit adds one record
  write per *group*, not per member — its cost must be invisible).

Recorded into ``BENCH_group.json`` at the repo root; the full-size run
guards the latency-regime speedup against an >20% regression vs the
committed value.  ``CI_FAST=1`` shrinks both regimes and skips the
guard and the JSON rewrite.
"""

import json
import os

import pytest

from repro.core.group import register_group
from repro.dnn.gpt import GPT_CONFIGS, shard_gpt, tiny_gpt
from repro.dnn.layout import gpt_layout
from repro.dnn.tensor import ModelInstance
from repro.harness.cluster import PaperCluster
from repro.harness.report import render_table
from repro.units import fmt_bytes, fmt_time

from conftest import run_once

BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          os.pardir, "BENCH_group.json")

#: Full-size: the latency regime at the example's 16-way topology, the
#: bandwidth regime on a real zoo model.
FULL = {
    "latency": dict(config="tiny", tp=8, pp=2, steps=5),
    "bandwidth": dict(config="gpt-1.5b", tp=8, pp=2, steps=1),
}
#: CI_FAST: same shape, smaller degrees / payloads.
SMALL = {
    "latency": dict(config="tiny", tp=4, pp=2, steps=3),
    "bandwidth": dict(config="bench-small", tp=4, pp=2, steps=1),
}


def _config(name):
    if name == "tiny":
        return tiny_gpt()
    if name == "bench-small":
        return tiny_gpt(name="bench-small", hidden=512, layers=12,
                        heads=8, seq_length=512, vocab_size=32000)
    return GPT_CONFIGS[name]


def _run(config, tp, pp, steps, grouped, seed=600):
    """One lifecycle; returns ``(dump_ns_total, total_bytes)``."""
    cluster = PaperCluster(seed=seed, ampere_nodes=2)
    shards = shard_gpt(config, tensor_parallel=tp, pipeline_parallel=pp)
    layout = gpt_layout(config, tp, pp)

    def scenario(env):
        clients = {}

        def client_of(node):
            if node.name not in clients:
                clients[node.name] = cluster.portus_client(node)
            return clients[node.name]

        instances, sessions = [], []
        for index, shard in enumerate(shards):
            node = cluster.amperes[index // 8 % 2]
            instance = ModelInstance.materialize(
                shard.name, shard.tensors, node.gpus[index % 8],
                model_seed=index)
            session = yield from client_of(node).register(instance)
            instances.append(instance)
            sessions.append(session)
        group = yield from register_group(
            client_of(cluster.amperes[0]), config.name, layout, sessions)
        start = env.now
        for step in range(1, steps + 1):
            for instance in instances:
                instance.update_step(step)
            if grouped:
                yield from group.dump(step)
            else:
                # Same end state as the group dump — every member DONE
                # and the commit record at *step* — via serialized pulls.
                for session in sessions:
                    yield from session.checkpoint(step)
                yield from group._commit(step)
        elapsed = env.now - start
        info = yield from group.query()
        assert info["step"] == steps
        return elapsed, sum(i.total_bytes for i in instances) * steps

    return cluster.run(scenario)


def _measure_regime(spec):
    config = _config(spec["config"])
    group_ns, total = _run(config, spec["tp"], spec["pp"],
                           spec["steps"], grouped=True)
    serial_ns, _ = _run(config, spec["tp"], spec["pp"], spec["steps"],
                        grouped=False)
    return {
        "config": config.name,
        "members": spec["tp"] * spec["pp"],
        "steps": spec["steps"],
        "total_bytes": total,
        "group_dump_ns": group_ns,
        "serial_dump_ns": serial_ns,
        "speedup": round(serial_ns / group_ns, 2),
        "group_gbps": round(total / (group_ns / 1e9) / 1e9, 2),
        "serial_gbps": round(total / (serial_ns / 1e9) / 1e9, 2),
    }


def _measure(cfg):
    latency = _measure_regime(cfg["latency"])
    bandwidth = _measure_regime(cfg["bandwidth"])
    return {"latency_bound": latency, "bandwidth_bound": bandwidth,
            "speedup": latency["speedup"]}


def _print_results(results):
    rows = [
        [regime, run["config"], run["members"],
         fmt_bytes(run["total_bytes"]), fmt_time(run["group_dump_ns"]),
         fmt_time(run["serial_dump_ns"]), f"{run['speedup']}x"]
        for regime, run in (("latency-bound", results["latency_bound"]),
                            ("bandwidth-bound",
                             results["bandwidth_bound"]))
    ]
    print(render_table(
        f"Group dump vs serial member dumps: "
        f"{results['speedup']}x where commit latency dominates",
        ["regime", "model", "members", "bytes", "group", "serial",
         "speedup"], rows))


def _check_structure(results, full):
    latency = results["latency_bound"]
    bandwidth = results["bandwidth_bound"]
    # The concurrency claim, where it honestly applies...
    assert latency["speedup"] >= (1.5 if full else 1.0), \
        f"group dump only {latency['speedup']}x vs serial"
    # ... and the no-penalty claim where it doesn't: the group's extra
    # commit machinery must not cost measurable ingest bandwidth.
    assert bandwidth["group_gbps"] >= 0.9 * bandwidth["serial_gbps"], \
        (f"group dump bandwidth regressed: {bandwidth['group_gbps']} "
         f"vs serial {bandwidth['serial_gbps']} GB/s")


def test_group_dump_speedup(benchmark, shared_results):
    fast = os.environ.get("CI_FAST", "0") != "0"
    cfg = SMALL if fast else FULL
    results = run_once(benchmark, "group_dump",
                       lambda: _measure(cfg), shared_results)
    _print_results(results)
    _check_structure(results, full=not fast)
    if fast:
        return  # no guard, no JSON rewrite

    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as fh:
            committed = json.load(fh)
        floor = committed["speedup"] * 0.8
        assert results["speedup"] >= floor, (
            f"group dump regressed: {results['speedup']}x < 80% of "
            f"committed {committed['speedup']}x")

    with open(BENCH_JSON, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.mark.bench_smoke
def test_smoke_group_dump_beats_serial():
    """CI_FAST-sized structure check without the benchmark fixture."""
    results = _measure(SMALL)
    _print_results(results)
    _check_structure(results, full=False)

"""Fleet-scale open-loop experiment: ~100 tenants over N shards.

The multi-tenant example, scaled two orders of magnitude: the same
workload generator (:mod:`repro.fleet.workload`) drives ~100 tenants,
each checkpointing on its own open-loop timer (a tick that finds the
previous dump still in flight is *skipped* and counted — open loop
never queues client-side).  The identical workload runs twice:

* **fleet** — ``storage_nodes`` shards, the placement ring spreading
  tenants across daemons, per-daemon admission control on;
* **single** — the same tenants hammering one daemon (the pre-fleet
  world), where the tail collapses under contention.

Recorded into ``BENCH_fleet.json`` at the repo root:

* per-run p50/p99 dump latency, completions, skips, errors;
* ``p99_improvement`` — single-daemon p99 over fleet p99 (the
  acceptance bar is >= 3x);
* per-daemon completion counts and their min/max ``fairness`` ratio
  (every shard must do real work — a ring that routes everything to
  one daemon reproduces the single-daemon collapse with extra steps);
* a live cross-shard migration of one tenant's model mid-workload,
  restored bit-exactly from the destination pool.

The full-size test is also the CI regression guard: it refuses a
``p99_improvement`` below 80% of the committed value.  ``CI_FAST=1``
shrinks the fleet and skips the guard and the JSON rewrite.
"""

import json
import os
import random

import pytest

from repro.core.retry import RetryPolicy
from repro.errors import ReproError
from repro.fleet import FleetClient, generate_tenants
from repro.harness.cluster import PaperCluster
from repro.harness.report import render_table
from repro.units import fmt_time, msecs, secs

from conftest import run_once

BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          os.pardir, "BENCH_fleet.json")

#: Small end of the zoo: the open loop needs many concurrent models,
#: not huge ones (the huge ones get their own figures).
MODEL_CYCLE = ("resnet18", "resnet34", "swin_t", "convnext_tiny")

#: Full-size: 96 tenants over 4 shards, 3 open-loop ticks each.
FULL = {"tenants": 96, "daemons": 4, "ticks": 3,
        "base_period_ns": msecs(700)}
#: CI_FAST: 12 tenants over 2 shards, 2 ticks.
SMALL = {"tenants": 12, "daemons": 2, "ticks": 2,
         "base_period_ns": msecs(400)}


def _percentile(values, q):
    ordered = sorted(values)
    return ordered[int(q * (len(ordered) - 1))]


def _run_fleet(cfg, daemons, seed=600, migrate=False):
    """One open-loop run over *daemons* shards; returns the stats."""
    # Open-loop clients under backpressure retry for as long as the
    # deadline allows — the per-daemon admission hints pace them.  The
    # reply timeout must comfortably exceed a contended dump, or the
    # client re-fires work the daemon is still completing and the
    # duplicate pulls melt the very tail being measured.
    policy = RetryPolicy(rng=random.Random(seed ^ 0xF1EE7),
                         max_attempts=512, deadline_ns=secs(12),
                         reply_timeout_ns=secs(4))
    # A coarse retry-after hint keeps ~90 turned-away clients from
    # polling a full daemon every few microseconds of simulated time.
    cluster = PaperCluster(seed=seed, ampere_nodes=2,
                           storage_nodes=daemons, client_retry=policy,
                           admission=dict(max_ingests=8,
                                          retry_after_ns=msecs(10)))
    fleet = FleetClient(cluster)
    tenants = generate_tenants(cfg["tenants"], seed=seed,
                               models=MODEL_CYCLE)
    sessions = []

    def setup(env):
        for spec in tenants:
            session = yield from fleet.register_spec(spec)
            sessions.append((spec, session))

    cluster.run(setup)

    stats = {"latencies": [], "skipped": 0, "errors": 0}

    def run_tenant(env, spec, session):
        period = spec.frequency * cfg["base_period_ns"]
        next_tick = env.now + period
        for step in range(1, cfg["ticks"] + 1):
            wait = next_tick - env.now
            if wait < 0:
                # Overran the tick while the previous dump was in
                # flight: open loop skips, never queues.
                stats["skipped"] += 1
            else:
                yield env.timeout(wait)
                start = env.now
                session.model.update_step(step)
                try:
                    yield from session.checkpoint(step)
                    stats["latencies"].append(env.now - start)
                except ReproError:
                    stats["errors"] += 1
            next_tick += period

    def open_loop(env):
        procs = [env.process(run_tenant(env, spec, session),
                             name=f"tenant:{spec.name}")
                 for spec, session in sessions]
        for proc in procs:
            yield proc

    cluster.run(open_loop)

    per_daemon = {
        shard.name: int(cluster.obs.metrics.value(
            f"daemon.{shard.node.name}.checkpoints_completed"))
        for shard in cluster.shards
    }
    busiest = max(per_daemon.values())
    result = {
        "daemons": daemons,
        "completed": len(stats["latencies"]),
        "skipped": stats["skipped"],
        "errors": stats["errors"],
        "p50_ns": _percentile(stats["latencies"], 0.50),
        "p99_ns": _percentile(stats["latencies"], 0.99),
        "per_daemon_completed": per_daemon,
        "fairness": round(min(per_daemon.values()) / busiest, 3)
        if busiest else 0.0,
        "admission_rejects": int(cluster.obs.metrics.sum_counters(
            "fleet.admission.rejects.")),
    }

    if migrate:
        spec, session = sessions[0]
        src = fleet.shard_of(spec.name, spec.instance_name)
        dst = min((s for s in cluster.shards if s.name != src.name),
                  key=lambda s: per_daemon[s.name])

        def live_migrate(env):
            step, moved = yield from fleet.migrate(
                spec.name, spec.instance_name, dst.name)
            session.model.update_step(0)
            restored = yield from session.restore()
            return step, moved, restored

        step, moved, restored = cluster.run(live_migrate)
        bad = [t.name for t in session.model.tensors
               if not t.content().equals(t.expected_content(restored))]
        result["migration"] = {
            "model": spec.instance_name,
            "from": src.name, "to": dst.name,
            "bytes_moved": moved,
            "restored_step": restored,
            "newest_step": step,
            "bit_exact": bad == [],
        }
    return result


def _measure(cfg):
    fleet = _run_fleet(cfg, cfg["daemons"], migrate=True)
    single = _run_fleet(cfg, 1)
    return {
        "workload": dict(cfg, models=list(MODEL_CYCLE)),
        "fleet": fleet,
        "single": single,
        "p99_improvement": round(single["p99_ns"] / fleet["p99_ns"], 2),
    }


def test_fleet_open_loop(benchmark, shared_results):
    fast = os.environ.get("CI_FAST", "0") != "0"
    cfg = SMALL if fast else FULL
    results = run_once(benchmark, "fleet_open_loop",
                       lambda: _measure(cfg), shared_results)
    fleet, single = results["fleet"], results["single"]
    rows = [
        [f"{run['daemons']} daemon(s)", run["completed"],
         run["skipped"], fmt_time(run["p50_ns"]),
         fmt_time(run["p99_ns"])]
        for run in (single, fleet)
    ]
    print(render_table(
        f"Open loop, {cfg['tenants']} tenants: sharding gives "
        f"{results['p99_improvement']}x better p99 dump latency",
        ["topology", "completed", "skipped", "p50", "p99"], rows))
    print(f"  per-daemon completions: {fleet['per_daemon_completed']} "
          f"(fairness {fleet['fairness']})")

    # Every shard did real work and the migration round-tripped.
    assert all(count > 0
               for count in fleet["per_daemon_completed"].values()), \
        f"idle shard: {fleet['per_daemon_completed']}"
    assert fleet["migration"]["bit_exact"], fleet["migration"]
    assert fleet["errors"] == 0, f"fleet run dropped {fleet['errors']}"

    if fast:
        # Reduced scale: the structure must hold (sharding never makes
        # the tail worse) but the 3x bar belongs to the full fleet.
        assert results["p99_improvement"] > 1.0
        return  # no guard, no JSON rewrite

    # The acceptance bar: sharding buys >= 3x on the p99 tail.
    assert results["p99_improvement"] >= 3.0, \
        f"p99 improved only {results['p99_improvement']}x (< 3x bar)"

    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as fh:
            committed = json.load(fh)
        floor = committed["p99_improvement"] * 0.8
        assert results["p99_improvement"] >= floor, (
            f"fleet regressed: {results['p99_improvement']}x < 80% of "
            f"committed {committed['p99_improvement']}x")

    with open(BENCH_JSON, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.mark.bench_smoke
def test_smoke_fleet_shards_beat_one_daemon():
    """CI_FAST-sized structure check without the benchmark fixture."""
    results = _measure(SMALL)
    assert results["fleet"]["completed"] > 0
    assert results["single"]["completed"] > 0
    assert results["fleet"]["p99_ns"] <= results["single"]["p99_ns"]

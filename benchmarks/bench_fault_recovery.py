"""Fault recovery: checkpoint cost under WR completion-fault rates.

Injects a per-WR failure probability on the server NIC (a flaky link /
marginal cable) and measures AlexNet checkpoint latency with the
retrying client.  Two claims: (1) the retry machinery is free when
nothing fails — the 0 %-fault path costs the same as the plain seed
client to within 2 %; (2) recovery degrades gracefully — even at a 5 %
per-WR fault rate every checkpoint still commits, it just pays retries.

The stress rates are calibrated to the transfer engine's WR
granularity: 4 MiB segmentation turns AlexNet's ~16 per-tensor WRs
into ~58, and a whole-checkpoint retry must win 58 independent
Bernoulli trials, so per-attempt success is (1-p)^58 — about 5 % at
p = 0.05 (≈20 attempts, well inside the policy budget) but ~2e-6 at
the pre-engine 20 % rate, which no finite budget survives.
"""

import random

import pytest

from repro.core.consistency import valid_checkpoint
from repro.core.retry import RetryPolicy
from repro.faults import FaultInjector
from repro.harness.cluster import PaperCluster
from repro.harness.report import render_table
from repro.units import fmt_time, msecs, secs, usecs

from conftest import run_once

RATES = [0.0, 0.01, 0.02, 0.05]
STEPS = 3


def _policy():
    return RetryPolicy(rng=random.Random(99), max_attempts=512,
                       initial_backoff_ns=usecs(200),
                       max_backoff_ns=msecs(20),
                       deadline_ns=secs(10), reply_timeout_ns=secs(1))


def _run_steps(cluster, rate):
    injector = FaultInjector(cluster.env, cluster)
    holder = {}

    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        session.model.update_step(0)
        yield from session.checkpoint(0)  # warm-up: both slots allocated
        if rate:
            injector.set_wr_fault_rate("server", rate=rate)
        start = env.now
        for step in range(1, STEPS + 1):
            session.model.update_step(step)
            yield from session.checkpoint(step)
        holder["elapsed_ns"] = env.now - start
        holder["retries"] = session.retries

    cluster.run(scenario)
    entry = cluster.daemon.model_map["alexnet"]
    assert valid_checkpoint(entry.meta)[1] == STEPS  # every step committed
    return {"per_ckpt_ns": holder["elapsed_ns"] // STEPS,
            "retries": holder["retries"]}


def _run_sweep():
    results = {}
    # Seed baseline: the plain client with no retry machinery at all.
    baseline = _run_steps(PaperCluster(seed=99, ampere_nodes=0), 0.0)
    results["baseline"] = baseline
    for rate in RATES:
        cluster = PaperCluster(seed=99, ampere_nodes=0,
                               client_retry=_policy())
        results[rate] = _run_steps(cluster, rate)
    return results


def test_fault_recovery(benchmark, shared_results):
    results = run_once(benchmark, "fault_recovery", _run_sweep,
                       shared_results)
    baseline = results["baseline"]["per_ckpt_ns"]
    rows = [["plain client, 0%", fmt_time(baseline), 0, "1.00x"]]
    for rate in RATES:
        entry = results[rate]
        rows.append([f"retry client, {rate:.0%}",
                     fmt_time(entry["per_ckpt_ns"]), entry["retries"],
                     f"{entry['per_ckpt_ns'] / baseline:.2f}x"])
    print(render_table(
        "Fault recovery: AlexNet checkpoint vs per-WR fault rate "
        f"({STEPS} steps)",
        ["configuration", "per-checkpoint", "retries", "vs plain"], rows))
    # Retry machinery is free on the fault-free path (<= 2% overhead).
    assert results[0.0]["per_ckpt_ns"] == pytest.approx(baseline, rel=0.02)
    assert results[0.0]["retries"] == 0
    # Faults cost retries, and more faults cost more time; but every
    # checkpoint still lands.
    assert results[0.05]["retries"] > results[0.02]["retries"] > 0
    assert results[0.05]["per_ckpt_ns"] > results[0.0]["per_ckpt_ns"]

"""Fig. 10: Portus datapath bandwidth and latency across device pairs.

Paper: GPU reads peak at 5.8 GB/s (30 % below DRAM's 8.3 GB/s) because
BAR-mapped reads cannot prefetch; writes are unaffected by BAR; DRAM vs
PMem as the storage target makes no difference; bandwidth saturates once
messages exceed 512 KiB.
"""

import pytest

from repro.harness.experiments import fig10_datapath
from repro.harness.report import render_series
from repro.units import fmt_bandwidth, fmt_bytes, gbytes, kib

from conftest import run_once


def test_fig10_datapath_curves(benchmark, shared_results):
    result = run_once(benchmark, "fig10", fig10_datapath, shared_results)
    sizes = result["sizes"]
    labels = [fmt_bytes(size) for size in sizes]
    print(render_series("Fig. 10(a/b): one-sided READ bandwidth",
                        "msg size", result["read_bw"], labels,
                        fmt=fmt_bandwidth))
    print(render_series("Fig. 10(c/d): one-sided WRITE bandwidth",
                        "msg size", result["write_bw"], labels,
                        fmt=fmt_bandwidth))

    peak = {path: bws[-1] for path, bws in result["read_bw"].items()}
    # GPU read peak 5.8 GB/s, ~30% below DRAM reads.
    assert peak["gpu->dram"] == pytest.approx(gbytes(5.8), rel=0.02)
    assert peak["dram->dram"] == pytest.approx(gbytes(8.3), rel=0.02)
    assert 1 - peak["gpu->dram"] / peak["dram->dram"] == pytest.approx(
        0.30, abs=0.03)
    # DRAM or PMem as the target does not matter.
    assert peak["gpu->pmem"] == pytest.approx(peak["gpu->dram"], rel=0.02)
    assert peak["dram->pmem"] == pytest.approx(peak["dram->dram"],
                                               rel=0.02)
    # BAR does not affect writes: pushing into the GPU runs at DRAM speed.
    write_peak = {path: bws[-1] for path, bws in result["write_bw"].items()}
    assert write_peak["dram->gpu"] == pytest.approx(
        write_peak["dram->dram"], rel=0.02)
    # Saturation: >=512 KiB messages reach >90% of peak bandwidth.
    index_512k = result["sizes"].index(kib(512))
    for path, bws in result["read_bw"].items():
        assert bws[index_512k] > 0.9 * peak[path], path
    # Small messages are latency-bound, far below peak.
    for path, bws in result["read_bw"].items():
        assert bws[0] < 0.3 * peak[path], path

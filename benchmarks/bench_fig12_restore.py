"""Fig. 12: restore time of the seven models across storage options.

Paper: Portus restores 5.15x faster than BeeGFS-PMem and 3.83x faster
than ext4-NVMe on average (up to 7.0x on ResNet50); the gain is smaller
than for checkpointing because GPUDirect Storage lets the baselines load
straight into GPU memory.
"""

import statistics

from repro.harness.experiments import fig11_fig12_times, speedups
from repro.harness.report import render_table
from repro.units import fmt_time

from conftest import run_once


def test_fig12_restore_times(benchmark, shared_results):
    times = run_once(benchmark, "fig11_12", fig11_fig12_times,
                     shared_results)
    ckpt = speedups(times, "checkpoint")
    restore = speedups(times, "restore")
    rows = []
    for i, model in enumerate(times["models"]):
        rows.append([
            model,
            fmt_time(times["restore"]["portus"][i]),
            fmt_time(times["restore"]["beegfs_pmem"][i]),
            fmt_time(times["restore"]["ext4_nvme"][i]),
            f"{restore['vs_beegfs'][i]:.2f}x",
            f"{restore['vs_ext4'][i]:.2f}x",
        ])
    print(render_table(
        "Fig. 12: restore time (paper: avg 5.15x/3.83x)",
        ["model", "portus", "beegfs-pmem", "ext4-nvme", "vs beegfs",
         "vs ext4"], rows))

    mean_beegfs = statistics.mean(restore["vs_beegfs"])
    mean_ext4 = statistics.mean(restore["vs_ext4"])
    assert 4.0 < mean_beegfs < 6.5
    assert 3.0 < mean_ext4 < 5.5
    # GDS on local NVMe makes ext4 the faster baseline at restore...
    assert mean_ext4 < mean_beegfs
    # ...and restore gains are lower than checkpoint gains (the paper's
    # GPUDirect-Storage observation).
    assert mean_beegfs < statistics.mean(ckpt["vs_beegfs"])
    # Portus restore is itself faster than Portus checkpoint (no BAR cap
    # on writes).
    for i in range(len(times["models"])):
        assert (times["restore"]["portus"][i]
                < times["checkpoint"]["portus"][i])

"""Fig. 15: overall GPT-22.4B training throughput, Portus vs CheckFreq.

Paper: Portus improves GPT-22.4B training throughput by ~2.6x under
fine-grained checkpointing and supports ~14,400 more iterations per 24 h
than CheckFreq.
"""

from repro.harness.experiments import fig15_fig16_training
from repro.harness.report import render_table

from conftest import run_once


def test_fig15_training_throughput(benchmark, shared_results):
    result = run_once(benchmark, "fig15_16", fig15_fig16_training,
                      shared_results)
    rows = []
    for system in ("checkfreq", "portus"):
        entry = result[system]
        rows.append([system, entry["iterations"],
                     f"{entry['iters_per_day']:.0f}",
                     f"{entry['utilization'] * 100:.1f}%"])
    print(render_table(
        f"Fig. 15: GPT-22.4B training, ckpt every "
        f"{result['checkpoint_every']} iterations over "
        f"{result['window_s']}s (paper: ~2.6x, +14,400 iters/24h)",
        ["system", f"iters/{result['window_s']}s", "iters/24h",
         "gpu util"], rows))
    print(f"\nthroughput ratio: {result['throughput_ratio']:.2f}x; "
          f"extra iterations per 24h: "
          f"{result['extra_iters_per_day']:.0f}")

    assert result["throughput_ratio"] > 1.5
    assert result["portus"]["iterations"] > result["checkfreq"]["iterations"]
    # The paper projects ~14,400 extra iterations per day; same order.
    assert 8_000 < result["extra_iters_per_day"] < 30_000

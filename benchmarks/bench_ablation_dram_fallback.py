"""Ablation: Portus with PMem vs the DRAM fallback (paper §IV-a).

Upon the absence of PMem the daemon can keep the same index and datapath
on server DRAM.  The paper's Fig. 10 observation predicts identical
checkpoint performance — the network path, not the storage medium, is
the single-stream bottleneck — which is exactly what this ablation
shows (at the cost of durability).
"""

import pytest

from repro.core.client import PortusClient
from repro.core.daemon import PortusDaemon
from repro.harness.cluster import PaperCluster
from repro.harness.report import render_table
from repro.pmem import PmemPool
from repro.units import fmt_time

from conftest import run_once


def _checkpoint_time(medium: str) -> int:
    cluster = PaperCluster(seed=210)
    if medium == "pmem":
        daemon = cluster.daemon
    else:
        pool = PmemPool.format(cluster.server.dram)
        daemon = PortusDaemon(cluster.env, cluster.server, pool,
                              cluster.server_tcp, port=9902)
        daemon.start()
    holder = {}

    def scenario(env):
        client = PortusClient(env, cluster.volta, cluster.volta_tcp,
                              daemon)
        instance = cluster.materialize("bert_large")
        session = yield from client.register(instance)
        instance.update_step(1)
        start = env.now
        yield from session.checkpoint(1)
        holder["elapsed"] = env.now - start

    cluster.run(scenario)
    return holder["elapsed"]


def _run_ablation():
    return {medium: _checkpoint_time(medium)
            for medium in ("pmem", "dram")}


def test_ablation_dram_fallback(benchmark, shared_results):
    results = run_once(benchmark, "ablation_dram", _run_ablation,
                       shared_results)
    rows = [[medium, fmt_time(ns)] for medium, ns in results.items()]
    print(render_table(
        "Ablation: storage medium, BERT checkpoint via Portus",
        ["server medium", "checkpoint time"], rows))
    # Identical within noise: the BAR-limited pull is the bottleneck.
    assert results["dram"] == pytest.approx(results["pmem"], rel=0.02)

"""Shared benchmark plumbing.

Every bench runs a deterministic simulation once (``benchmark.pedantic``
with a single round — repeating a deterministic run only wastes wall
time), prints the paper-style rows, and asserts the reproduction bands
from EXPERIMENTS.md.  Expensive experiments are cached so sibling benches
(Fig. 11/12 share one run; Fig. 15/16 share one run) reuse results.

``--trace-out DIR`` makes tracing-aware benches (the Fig. 13 breakdown)
write their Chrome ``trace_event`` JSON there, one file per bench,
loadable in chrome://tracing or Perfetto.
"""

import os

import pytest

_RESULTS = {}


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out", action="store", default=None, metavar="DIR",
        help="directory for Chrome trace JSON from tracing-aware benches")


@pytest.fixture(scope="session")
def trace_out_dir(request):
    """The --trace-out directory (created), or None when not requested."""
    path = request.config.getoption("--trace-out")
    if path is not None:
        os.makedirs(path, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def shared_results():
    """Cross-bench cache for experiments that feed several figures."""
    return _RESULTS


def run_once(benchmark, key, func, shared):
    """Run *func* under the benchmark fixture, caching into *shared*."""
    if key in shared:
        # A sibling bench already produced the data; time only the reuse.
        result = shared[key]
        benchmark.pedantic(lambda: result, rounds=1, iterations=1)
        return result
    result = benchmark.pedantic(func, rounds=1, iterations=1)
    shared[key] = result
    return result

"""Ablation: ModelMap red-black tree vs linear ModelTable scanning.

The persistent ModelTable is a sorted array; the daemon fronts it with a
DRAM red-black tree so lookups stay O(log n) as the multi-tenant model
count grows (the paper stores "thousands of models' checkpoints").  This
is a host-time micro-benchmark of the lookup structure itself.
"""

import time

from repro.core.modelmap import ModelMap
from repro.harness.report import render_table

MODELS = 4096
LOOKUPS = 20000


def _build():
    tree = ModelMap()
    names = [f"tenant-{i % 64}/model-{i:05d}" for i in range(MODELS)]
    for i, name in enumerate(names):
        tree.insert(name, i)
    probe = [names[(i * 2654435761) % MODELS] for i in range(LOOKUPS)]
    return tree, names, probe


def test_ablation_modelmap_lookup(benchmark):
    tree, names, probe = _build()

    def tree_lookups():
        total = 0
        for name in probe:
            total += tree[name]
        return total

    expected = benchmark(tree_lookups)

    # Reference: linear scan of the sorted-array representation.
    table = sorted((name, i) for i, name in enumerate(names))

    def scan(name):
        for key, value in table:
            if key == name:
                return value
        raise KeyError(name)

    start = time.perf_counter()
    total = 0
    for name in probe[:LOOKUPS // 20]:
        total += scan(name)
    linear_per_lookup = (time.perf_counter() - start) / (LOOKUPS // 20)

    start = time.perf_counter()
    tree_total = tree_lookups()
    tree_per_lookup = (time.perf_counter() - start) / LOOKUPS
    assert tree_total == expected

    print(render_table(
        f"Ablation: lookup structure at {MODELS} models",
        ["structure", "per lookup"],
        [["ModelMap (red-black tree)", f"{tree_per_lookup * 1e6:.2f}us"],
         ["linear ModelTable scan", f"{linear_per_lookup * 1e6:.2f}us"]]))
    assert tree_per_lookup < linear_per_lookup

"""Fig. 16: GPU utilization trace training GPT-22.4B (500 s window).

Paper: Portus sustains 76.4 % average utilization versus less than 43 %
for CheckFreq, because the zero-copy pull removes the I/O stalls.
"""

from repro.harness.experiments import fig15_fig16_training
from repro.harness.report import render_table

from conftest import run_once


def test_fig16_gpu_utilization(benchmark, shared_results):
    result = run_once(benchmark, "fig15_16", fig15_fig16_training,
                      shared_results)
    portus = result["portus"]
    checkfreq = result["checkfreq"]

    rows = []
    for (t_portus, u_portus), (_t, u_checkfreq) in zip(
            portus["trace"], checkfreq["trace"]):
        rows.append([f"{(t_portus - portus['trace'][0][0]) / 1e9:.0f}s",
                     f"{u_portus * 100:5.1f}%",
                     f"{u_checkfreq * 100:5.1f}%"])
    print(render_table(
        "Fig. 16: GPU utilization trace, GPT-22.4B "
        "(paper: 76.4% vs <43%)",
        ["t", "portus", "checkfreq"], rows[::5]))  # every 50 s
    print(f"\nmean utilization: portus "
          f"{portus['utilization'] * 100:.1f}% vs checkfreq "
          f"{checkfreq['utilization'] * 100:.1f}%")

    # The paper's bands: ~76% vs <43%, with clear separation.
    assert abs(portus["utilization"] - 0.764) < 0.08
    assert checkfreq["utilization"] < 0.50
    assert portus["utilization"] > checkfreq["utilization"] + 0.25

"""Engine ablation: barrier-window vs sliding-window vs striped datapath.

Headline (the Fig. 14 dump, GPT-22.4B over 16 shards): the seed's
barrier-window datapath runs the concurrent dump at the *congested*
PMem write rate (6.0 GB/s) because 16 models x QP_DEPTH in-flight WRs
swamp the Optane write-combining buffer.  The striped engine (4 QPs per
model, 4 MiB segmentation, daemon-wide ingest limiter) holds the media
at its uncongested 8.4 GB/s.  That ratio — 8.4/6.0 = 1.40x — is the
*entire* headroom scheduling can recover: the bench asserts >= 1.3x and
that the measurement never claims more than the physics allows.

The grid sweep (QP depth x chunk size x tensor-size skew) runs on a
synthetic single-model workload where the per-WR costs are visible:
depth 1 serializes one posting latency per WR, chunking normalizes a
skewed tensor-size distribution to the uniform one, and the sliding
window beats the barrier by one posting latency per retired window.

Results are recorded to BENCH_engine.json at the repo root.
"""

import json
import os

import repro.core.daemon as daemon_module
from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.harness.cluster import PaperCluster
from repro.harness.experiments import engine_datapath_ablation
from repro.harness.report import render_table
from repro.units import fmt_time, kib, mib

from conftest import run_once

BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          os.pardir, "BENCH_engine.json")

#: The PMem congestion cliff bounds the headline speedup (DESIGN.md §7).
PHYSICAL_CEILING = 8.4 / 6.0

DEPTHS = [1, 8, 32]
CHUNKS = {"none": None, "64k": kib(64), "4m": mib(4)}
#: Same total bytes (256 MiB), very different distributions.
SKEWS = {
    "uniform": lambda: [TensorSpec(f"t{i}", (1024, 1024))  # 64 x 4 MiB
                        for i in range(64)],
    "skewed": lambda: [TensorSpec("giant", (32 * 1024, 1024))]  # 128 MiB
    + [TensorSpec(f"s{i}", (256, 1024)) for i in range(128)],  # + 1 MiB
}


def _grid_time(specs, depth, chunk_bytes, pipelined=True, seed=203):
    original = daemon_module.QP_DEPTH
    daemon_module.QP_DEPTH = depth
    try:
        cluster = PaperCluster(
            seed=seed, ampere_nodes=0,
            daemon_kwargs={"engine": {"chunk_bytes": chunk_bytes,
                                      "pipelined": pipelined}})
        holder = {}

        def scenario(env):
            instance = ModelInstance.materialize(
                "grid", specs, cluster.volta.gpus[0], model_seed=1)
            session = yield from cluster.portus_client().register(instance)
            instance.update_step(1)
            start = env.now
            yield from session.checkpoint(1)
            holder["elapsed"] = env.now - start

        cluster.run(scenario)
        return holder["elapsed"], cluster.server.nic.wrs_posted
    finally:
        daemon_module.QP_DEPTH = original


def _run_grid():
    grid = {}
    for skew, make_specs in SKEWS.items():
        for depth in DEPTHS:
            for chunk_name, chunk_bytes in CHUNKS.items():
                elapsed, wrs = _grid_time(make_specs(), depth, chunk_bytes)
                grid[f"{skew}/depth{depth}/{chunk_name}"] = {
                    "elapsed_ns": elapsed, "wrs": wrs}
        # The barrier comparison point, one cell per skew.
        elapsed, wrs = _grid_time(make_specs(), 8, kib(64),
                                  pipelined=False)
        grid[f"{skew}/depth8/64k/barrier"] = {"elapsed_ns": elapsed,
                                              "wrs": wrs}
    return grid


def _run_all():
    return {"headline": engine_datapath_ablation(), "grid": _run_grid()}


def test_engine_pipeline(benchmark, shared_results):
    results = run_once(benchmark, "engine_pipeline", _run_all,
                       shared_results)
    headline, grid = results["headline"], results["grid"]

    speedup = headline["barrier_ns"] / headline["striped_ns"]
    rows = [
        ["barrier (seed)", fmt_time(headline["barrier_ns"]), "1.00x"],
        ["sliding, 1 QP", fmt_time(headline["sliding_ns"]),
         f"{headline['barrier_ns'] / headline['sliding_ns']:.3f}x"],
        ["striped, 4 QP + ingest cap", fmt_time(headline["striped_ns"]),
         f"{speedup:.3f}x"],
    ]
    print(render_table(
        "Engine ablation: GPT-22.4B concurrent dump (ceiling 1.40x = "
        "PMem 8.4/6.0 GB/s)",
        ["datapath", "dump time", "speedup"], rows))
    grid_rows = [[cell, fmt_time(entry["elapsed_ns"]), entry["wrs"]]
                 for cell, entry in grid.items()]
    print(render_table(
        "Grid: 256 MiB model, skew x QP depth x chunk size",
        ["cell", "checkpoint", "WRs posted"], grid_rows))

    payload = dict(results)
    payload["headline"] = dict(headline,
                               speedup_striped_vs_barrier=round(speedup, 4),
                               physical_ceiling=round(PHYSICAL_CEILING, 4))
    with open(BENCH_JSON, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    # The headline claim, bounded by physics on both sides.
    assert speedup >= 1.3
    assert speedup <= PHYSICAL_CEILING * 1.01
    # The default single-QP pipelined datapath never regresses the seed.
    assert headline["sliding_ns"] <= headline["barrier_ns"] * 1.01

    for skew in SKEWS:
        # Depth 1 serializes one posting latency per WR.
        assert grid[f"{skew}/depth1/64k"]["elapsed_ns"] > \
            grid[f"{skew}/depth32/64k"]["elapsed_ns"]
        # The barrier pays a posting latency per retired window.
        assert grid[f"{skew}/depth8/64k/barrier"]["elapsed_ns"] > \
            grid[f"{skew}/depth8/64k"]["elapsed_ns"]
    # Chunking normalizes the skewed distribution to the uniform one.
    uniform = grid["uniform/depth32/4m"]["elapsed_ns"]
    skewed = grid["skewed/depth32/4m"]["elapsed_ns"]
    assert abs(skewed - uniform) <= uniform * 0.02

"""Ablation: QP posting depth for the per-tensor pull.

The daemon pulls every tensor with its own one-sided READ; with a posting
window of 1 the per-operation latency of hundreds of small tensors
serializes, while a modest window (the default 32) overlaps latencies and
saturates the BAR-limited bandwidth.
"""

import pytest

import repro.core.daemon as daemon_module
from repro.harness.cluster import PaperCluster
from repro.harness.report import render_table
from repro.units import fmt_time

from conftest import run_once

DEPTHS = [1, 4, 32, 128]


def _time_checkpoint(depth: int) -> int:
    original = daemon_module.QP_DEPTH
    daemon_module.QP_DEPTH = depth
    try:
        cluster = PaperCluster(seed=202)
        holder = {}

        def scenario(env):
            session = yield from cluster.portus_register("resnet50")
            session.model.update_step(1)
            start = env.now
            yield from session.checkpoint(1)
            holder["elapsed"] = env.now - start

        cluster.run(scenario)
        return holder["elapsed"]
    finally:
        daemon_module.QP_DEPTH = original


def _run_ablation():
    return {depth: _time_checkpoint(depth) for depth in DEPTHS}


def test_ablation_qp_depth(benchmark, shared_results):
    results = run_once(benchmark, "ablation_qp_depth", _run_ablation,
                       shared_results)
    rows = [[depth, fmt_time(ns)] for depth, ns in results.items()]
    print(render_table(
        "Ablation: posting window depth, ResNet50 (161 tensors)",
        ["QP depth", "checkpoint time"], rows))
    # Depth 1 serializes 161 op latencies; deeper windows overlap them.
    assert results[1] > results[32]
    # Returns diminish once the window covers the latency-bandwidth
    # product: 32 -> 128 changes little.
    assert results[128] == pytest.approx(results[32], rel=0.10)

"""Ablation: BeeGFS stripe width for the baseline's write path.

The paper's deployment stacks BeeGFS on a single PMem target; striping
across more targets parallelizes the DAX copies but cannot fix the
baseline's real bottlenecks (serialization, staging, the two-sided
protocol).  This ablation widens the stripe and shows the end-to-end
checkpoint improving only marginally — evidence that the paper's
datapath argument, not the storage target, is what matters.
"""

from repro.baselines.torch_save import TorchSaveCheckpointer
from repro.fs.dax import DaxFilesystem
from repro.fs.beegfs import BeegfsClient, BeegfsServer
from repro.harness.report import render_table
from repro.hw import ComputeNode, PmemDimm, StorageNode
from repro.net import Fabric
from repro.rdma import Rnic, enable_peer_memory
from repro.sim import Environment
from repro.units import fmt_time, gib

from conftest import run_once

WIDTHS = [1, 2, 4]


def _checkpoint_time(targets: int) -> int:
    env = Environment()
    fabric = Fabric(env)
    server_node = StorageNode(env, "server")
    Rnic(env, server_node, fabric)
    backings = [
        DaxFilesystem(env, PmemDimm(env, name=f"pmem{i}", dimms=1,
                                    dimm_capacity=gib(64)),
                      name=f"dax{i}")
        for i in range(targets)
    ]
    server = BeegfsServer(env, server_node, backings)
    node = ComputeNode(env, "client", gpu_count=1)
    Rnic(env, node, fabric)
    enable_peer_memory(node.nic, node.gpus[0])
    holder = {}

    def scenario(env):
        from repro.dnn.models import build_model
        from repro.dnn.tensor import ModelInstance

        mount = yield from BeegfsClient.mount(env, node, server)
        checkpointer = TorchSaveCheckpointer(env, mount, node.cpus)
        spec = build_model("bert_large")
        model = ModelInstance.materialize("bert_large", spec.tensors,
                                          node.gpus[0])
        model.update_step(1)
        start = env.now
        yield from checkpointer.checkpoint(model)
        holder["elapsed"] = env.now - start

    env.run_process(env.process(scenario(env)))
    return holder["elapsed"]


def _run_ablation():
    return {width: _checkpoint_time(width) for width in WIDTHS}


def test_ablation_stripe_width(benchmark, shared_results):
    results = run_once(benchmark, "ablation_stripe", _run_ablation,
                       shared_results)
    rows = [[width, fmt_time(ns), f"{results[1] / ns:.2f}x"]
            for width, ns in results.items()]
    print(render_table(
        "Ablation: BeeGFS stripe width, BERT checkpoint via torch.save",
        ["targets", "checkpoint time", "speedup vs 1"], rows))
    # Wider stripes help a little (parallel DAX copies)...
    assert results[4] <= results[1]
    # ...but cannot fix the datapath: even 4 targets recover < 25% of the
    # baseline's time, far from Portus's ~8x.
    assert results[1] / results[4] < 1.33

"""Table I: breakdown of the traditional DNN checkpointing datapath.

Paper: GPU->main memory 15.5 %, serialization 41.7 %, transmission (RDMA)
30.0 %, server DAX write 12.8 % — for a BERT checkpoint through
torch.save to BeeGFS-PMem.
"""

from repro.harness.calibration import TABLE1_PAPER
from repro.harness.experiments import table1_breakdown
from repro.harness.report import render_breakdown

from conftest import run_once


def test_table1_breakdown(benchmark, shared_results):
    measured = run_once(benchmark, "table1", table1_breakdown,
                        shared_results)
    print(render_breakdown("Table I: DNN checkpointing overhead",
                           measured, paper=TABLE1_PAPER))
    for phase, paper_share in TABLE1_PAPER.items():
        assert abs(measured[phase] - paper_share) < 0.03, phase
    # Serialization dominates; the two CPU-side phases exceed half.
    assert measured["serialization"] == max(measured.values())
    assert measured["gpu_to_dram"] + measured["serialization"] > 0.5

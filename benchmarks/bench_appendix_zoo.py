"""Appendix: checkpoint speedups across the extended model zoo.

The paper evaluates 76 DNN models and prints seven; its appendix reports
the rest.  This bench sweeps a broad slice of the zoo (every family at
several scales) and checks the paper's core claim generalizes: Portus
beats torch.save -> BeeGFS-PMem by roughly the same factor on *every*
model, regardless of family or size.
"""

import statistics

from repro.dnn.zoo import build_zoo_model
from repro.harness.experiments import _portus_times, _torch_save_times
from repro.harness.report import render_table
from repro.units import MIB, fmt_time

from conftest import run_once

APPENDIX_MODELS = [
    "resnet18", "resnet101", "vgg16_bn", "vit_b_16", "vit_l_16",
    "swin_t", "convnext_tiny", "convnext_large",
]


def _run_sweep():
    rows = {}
    for name in APPENDIX_MODELS:
        portus_ckpt, _portus_restore = _portus_times(name)
        beegfs_ckpt, _beegfs_restore = _torch_save_times(name, "beegfs")
        rows[name] = (portus_ckpt, beegfs_ckpt)
    return rows


def test_appendix_zoo_sweep(benchmark, shared_results):
    rows = run_once(benchmark, "appendix_zoo", _run_sweep, shared_results)
    table = []
    ratios = []
    for name, (portus_ns, beegfs_ns) in rows.items():
        size_mib = build_zoo_model(name).total_bytes / MIB
        ratio = beegfs_ns / portus_ns
        ratios.append(ratio)
        table.append([name, f"{size_mib:.0f}MiB", fmt_time(portus_ns),
                      fmt_time(beegfs_ns), f"{ratio:.2f}x"])
    print(render_table(
        "Appendix: checkpoint speedup across the extended zoo",
        ["model", "size", "portus", "beegfs-pmem", "speedup"], table))
    # The claim generalizes: every model in the paper's band.
    assert all(6.0 < ratio < 10.5 for ratio in ratios)
    spread = max(ratios) - min(ratios)
    assert spread < 2.5  # size/family change the factor only mildly
    assert 7.5 < statistics.mean(ratios) < 9.5

"""Ablation: one-sided RDMA READ vs two-sided RPC-over-RDMA transport.

The paper attributes part of Portus's win to its one-sided protocol
(§V-D, citing RPCoRDMA's cost): the server CPU never touches the data.
This ablation moves the same 1 GiB payload from client memory to the
server both ways and reports effective bandwidth.
"""

import pytest

from repro.harness.cluster import PaperCluster
from repro.harness.report import render_table
from repro.hw.content import PatternContent
from repro.rdma.rpc import RpcClient, RpcServer
from repro.rdma.verbs import connect
from repro.units import fmt_bandwidth, gib, to_seconds

from conftest import run_once

SIZE = gib(1)


def _run_ablation():
    cluster = PaperCluster(seed=200)
    env = cluster.env
    results = {}

    def scenario(env):
        src = cluster.volta.dram.alloc(SIZE)
        src.write(0, PatternContent(7, SIZE))
        dst = cluster.server.dram.alloc(SIZE)
        src_mr = yield from cluster.volta.nic.register_mr(src)
        dst_mr = yield from cluster.server.nic.register_mr(dst)
        server_qp, client_qp = yield from connect(env, cluster.server.nic,
                                                  cluster.volta.nic)
        # One-sided: the server pulls.
        start = env.now
        yield server_qp.read(dst_mr, 0, src_mr.rkey, src_mr.addr, SIZE)
        results["one_sided_ns"] = env.now - start

        # Two-sided: an RPC write carrying the same payload.
        rpc_server = RpcServer(env, cluster.server.cpus)

        def handler(args):
            return ({}, 64)
            yield  # pragma: no cover

        rpc_server.register("put", handler)
        env.process(rpc_server.serve(server_qp))
        rpc_client = RpcClient(env, client_qp)
        start = env.now
        yield from rpc_client.call("put", payload_size=SIZE)
        results["two_sided_ns"] = env.now - start

    cluster.run(scenario)
    return results


def test_ablation_one_sided_vs_two_sided(benchmark, shared_results):
    results = run_once(benchmark, "ablation_onesided", _run_ablation,
                       shared_results)
    one_bw = SIZE / to_seconds(results["one_sided_ns"])
    two_bw = SIZE / to_seconds(results["two_sided_ns"])
    print(render_table(
        "Ablation: transport protocol, 1 GiB DRAM -> server",
        ["transport", "time (ms)", "effective bw"],
        [["one-sided READ", f"{results['one_sided_ns'] / 1e6:.1f}",
          fmt_bandwidth(one_bw)],
         ["two-sided RPCoRDMA", f"{results['two_sided_ns'] / 1e6:.1f}",
          fmt_bandwidth(two_bw)]]))
    # One-sided rides the 8.3 GB/s DMA path; two-sided adds the staging
    # and per-chunk server CPU, landing near the Table I 2.4 GB/s.
    assert one_bw == pytest.approx(8.3e9, rel=0.03)
    assert two_bw < 0.45 * one_bw

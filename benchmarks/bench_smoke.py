"""One-iteration, tiny-model smoke pass over the benchmark suite.

Each test drives the same experiment entry point as its full-size
sibling bench, shrunk to the smallest model/config and one iteration,
and asserts only structure (times positive, winners in the right
order).  The point is a seconds-long signal that every benchmark
datapath still runs end to end — ``scripts/bench_smoke.sh`` runs this
module; the full suite stays opt-in.
"""

import pytest

from repro.core.retry import RetryPolicy
from repro.faults import FaultInjector
from repro.harness.experiments import (engine_datapath_ablation,
                                       fig9_timeline, fig10_datapath,
                                       fig11_fig12_times, fig14_gpt_dump,
                                       table1_breakdown)
from repro.harness.cluster import PaperCluster
from repro.units import mib, msecs, secs, usecs

pytestmark = pytest.mark.bench_smoke


def test_smoke_table1_breakdown():
    shares = table1_breakdown("alexnet")
    assert shares
    assert abs(sum(shares.values()) - 1.0) < 1e-6


def test_smoke_fig10_datapath():
    result = fig10_datapath(sizes=[mib(1)])
    assert all(bw > 0 for curve in result["read_bw"].values()
               for bw in curve)
    assert all(bw > 0 for curve in result["write_bw"].values()
               for bw in curve)


def test_smoke_fig11_fig12_times():
    result = fig11_fig12_times(["alexnet"])
    ckpt, restore = result["checkpoint"], result["restore"]
    assert ckpt["portus"][0] < min(t[0] for name, t in ckpt.items()
                                   if name != "portus")
    assert restore["portus"][0] > 0


def test_smoke_fig14_gpt_dump():
    result = fig14_gpt_dump(configs=["gpt-1.5b"])
    assert result["portus"][0] < result["torch_save"][0]


def test_smoke_engine_ablation():
    result = engine_datapath_ablation("gpt-1.5b")
    assert 0 < result["striped_ns"] <= result["barrier_ns"]
    assert result["sliding_ns"] <= result["barrier_ns"] * 1.01


def test_smoke_fig9_timeline():
    result = fig9_timeline("alexnet", iterations=1)
    assert result


def test_smoke_traced_run_emits_valid_chrome_trace(tmp_path):
    """A traced benchmark run produces loadable Chrome trace JSON and a
    metrics snapshot, and tracing costs zero simulated time."""
    import json

    def run(tracing):
        cluster = PaperCluster(seed=97, ampere_nodes=0, tracing=tracing)
        holder = {}

        def scenario(env):
            session = yield from cluster.portus_register("alexnet")
            session.model.update_step(1)
            yield from session.checkpoint(1)
            yield from session.restore()
            holder["end"] = env.now

        cluster.run(scenario)
        return cluster, holder["end"]

    _plain, end_plain = run(False)
    traced, end_traced = run(True)
    assert end_plain == end_traced  # zero-cost contract

    trace_path = tmp_path / "smoke-trace.json"
    traced.obs.tracer.write(str(trace_path))
    trace = json.loads(trace_path.read_text())
    events = trace["traceEvents"]
    assert events
    phases = {e["ph"] for e in events}
    assert phases <= {"X", "M"} and "X" in phases and "M" in phases
    for event in events:
        assert {"ph", "name", "pid", "tid"} <= set(event)
        if event["ph"] == "X":
            assert event["dur"] >= 0 and event["ts"] >= 0
    names = {e["name"] for e in events}
    assert {"client.DO_CHECKPOINT", "client.DO_RESTORE",
            "daemon.DO_CHECKPOINT", "daemon.DO_RESTORE",
            "engine.read", "engine.write"} <= names

    metrics_path = tmp_path / "smoke-metrics.json"
    traced.obs.metrics.write(str(metrics_path))
    snapshot = json.loads(metrics_path.read_text())
    assert snapshot["daemon.checkpoints_completed"]["value"] == 1
    assert snapshot["daemon.restores_completed"]["value"] == 1


def test_smoke_fault_recovery():
    policy = RetryPolicy(max_attempts=64, initial_backoff_ns=usecs(200),
                         max_backoff_ns=msecs(20), deadline_ns=secs(10),
                         reply_timeout_ns=secs(1))
    cluster = PaperCluster(seed=98, ampere_nodes=0, client_retry=policy)
    injector = FaultInjector(cluster.env, cluster)

    def scenario(env):
        session = yield from cluster.portus_register("alexnet")
        session.model.update_step(1)
        yield from session.checkpoint(1)
        injector.set_wr_fault_rate("server", rate=0.02)
        session.model.update_step(2)
        yield from session.checkpoint(2)
        return session.retries

    cluster.run(scenario)
    assert cluster.daemon.checkpoints_completed == 2

"""Simulator hot-path throughput: incremental vs full-recompute solver.

A fleet-scale open-loop workload — hundreds of clients striping
checkpoint transfers over per-group shared NIC and PMem channels —
drives the event engine and fluid scheduler as hard as the paper-scale
experiments do, and measures *host* wall-clock, not simulated time.
The same workload runs twice: once on the incremental scheduler
(dirty-channel component re-solve + same-tick admission coalescing,
the default) and once on the retained pre-rewrite reference solver
(``use_reference_scheduler``: a full recompute over every live flow on
every membership change).  The completion streams must be bit-identical
— the speedup is only admissible if the answer did not change.

Results land in ``BENCH_sim.json`` at the repo root:

* ``incremental`` / ``reference`` — wall seconds, scheduled events,
  events/sec, and scheduler solve counters for each run;
* ``speedup`` — reference wall / incremental wall.  The reference run
  shares the new slotted event engine, so this understates the true
  gap to the pre-rewrite engine;
* ``checksum`` — SHA-256 over the completion stream, equal for both.

The full-size test is also the CI regression guard: it refuses a >20%
drop in measured speedup against the committed ``BENCH_sim.json``
(a ratio of two same-process wall clocks, so it transfers across
machines, unlike absolute seconds).  ``CI_FAST=1`` shrinks the fleet
and skips the guard and the JSON rewrite.
"""

import hashlib
import json
import os
import time

import pytest

from repro.sim import Environment, SharedChannel, Transfer
from repro.sim.resources import scheduler_stats, use_reference_scheduler
from repro.units import gbytes

BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          os.pardir, "BENCH_sim.json")

#: Full-size fleet: 16 daemon groups x 20 clients x 3 rounds x 4 stripes.
FLEET = {"groups": 16, "clients": 20, "rounds": 3, "stripes": 4}
#: CI_FAST / smoke fleet: same shape, seconds instead of tens of seconds.
SMALL = {"groups": 4, "clients": 6, "rounds": 2, "stripes": 4}

MB = 1_000_000


def _build_and_run(cfg, reference):
    """Run the fleet workload once; return (wall_s, events, stats, digest)."""
    env = Environment()
    if reference:
        use_reference_scheduler(env)
    completions = []

    groups = []
    for g in range(cfg["groups"]):
        nic = SharedChannel(env, gbytes(12), name=f"nic{g}")
        pmem = SharedChannel(env, gbytes(8), name=f"pmem{g}",
                             congested_capacity_bps=gbytes(6),
                             congestion_threshold=8)
        groups.append((nic, pmem))

    def client(env, group, cid):
        nic, pmem = groups[group]
        link = SharedChannel(env, gbytes(3), name=f"link{group}.{cid}")
        # Staggered starts keep admissions churning instead of arriving
        # in one burst; awkward sizes force non-trivial finish times.
        yield env.timeout(1 + (group * cfg["clients"] + cid) * 9_973)
        for rnd in range(cfg["rounds"]):
            stripes = []
            for s in range(cfg["stripes"]):
                size = 48 * MB + (cid * 7_919 + rnd * 104_729
                                  + s * 1_299_721) % (9 * MB)
                stripes.append(Transfer(
                    env, [link, nic, pmem], size,
                    label=f"g{group}.c{cid}.r{rnd}.s{s}"))
            for transfer in stripes:
                yield transfer
                completions.append((transfer.label, transfer.started_at,
                                    transfer.finished_at))
            yield env.timeout(2_000_000 + cid * 11_003)

    started = time.perf_counter()
    for g in range(cfg["groups"]):
        for c in range(cfg["clients"]):
            env.process(client(env, g, c))
    env.run()
    wall = time.perf_counter() - started

    digest = hashlib.sha256(
        "\n".join(f"{l} {s} {f}" for l, s, f in completions)
        .encode()).hexdigest()
    return wall, env._seq, scheduler_stats(env), digest


def _measure(cfg):
    results = {}
    for name, reference in (("incremental", False), ("reference", True)):
        wall, events, stats, digest = _build_and_run(cfg, reference)
        results[name] = {"wall_s": round(wall, 4), "events": events,
                         "events_per_s": round(events / wall),
                         "stats": stats, "checksum": digest}
    # Internal event counts differ by design (the incremental scheduler
    # coalesces per-stripe solves into one flush and one wakeup timer per
    # tick); the *observable* completion stream is the invariant.
    assert results["incremental"]["checksum"] == \
        results["reference"]["checksum"], \
        "schedulers disagree on the completion stream"
    return results


def test_sim_hotpath_fleet():
    fast = os.environ.get("CI_FAST", "0") != "0"
    cfg = SMALL if fast else FLEET
    results = _measure(cfg)
    inc, ref = results["incremental"], results["reference"]
    speedup = ref["wall_s"] / inc["wall_s"]
    print(f"\nsim hot-path ({cfg['groups']}x{cfg['clients']} clients, "
          f"{inc['events']} events): incremental {inc['wall_s']:.3f}s "
          f"({inc['events_per_s']:,} ev/s) vs reference "
          f"{ref['wall_s']:.3f}s -> {speedup:.2f}x; flows solved "
          f"{inc['stats']['flows_solved']:,} vs "
          f"{ref['stats']['flows_solved']:,}")

    # The incremental solver must touch far fewer flows regardless of
    # machine speed.
    assert inc["stats"]["flows_solved"] * 5 <= ref["stats"]["flows_solved"]

    if fast:
        return  # reduced scale: structure checked, no guard, no rewrite

    assert speedup >= 3.0, f"speedup {speedup:.2f}x below the 3x bar"

    payload = {
        "workload": dict(cfg, total_clients=cfg["groups"] * cfg["clients"],
                         transfers=cfg["groups"] * cfg["clients"]
                         * cfg["rounds"] * cfg["stripes"]),
        "incremental": inc,
        "reference": ref,
        "speedup": round(speedup, 2),
        "checksum": inc["checksum"],
    }

    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as fh:
            committed = json.load(fh)
        floor = committed["speedup"] * 0.8
        assert speedup >= floor, (
            f"sim hot-path regressed: speedup {speedup:.2f}x < 80% of "
            f"committed {committed['speedup']:.2f}x")

    with open(BENCH_JSON, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.mark.bench_smoke
def test_smoke_sim_hotpath_schedulers_agree():
    """Tiny fleet, structure only: both schedulers run end to end and
    produce identical completion streams."""
    results = _measure({"groups": 2, "clients": 3, "rounds": 2,
                        "stripes": 4})
    assert results["incremental"]["events"] > 0

"""Deduplicated checkpoints on the Fig. 14 incremental dump trace.

The Fig. 14 GPT experiment dumps a training run's checkpoint sequence;
its fine-tune analogue here is ViT-L/32 with a head-only trace — one
full checkpoint followed by head-only fine-tune steps, the same trace
the incremental ablation uses.  The full (contiguous) layout re-pulls
every byte each dump; the dedup layout hashes per-tensor dirty spans
client-side and moves only chunks the pool-wide refcounted store does
not already hold.

Recorded into ``BENCH_dedup.json`` at the repo root:

* ``bytes_moved`` full vs dedup over the whole trace, and ``reduction``
  (the acceptance bar is >= 3x; head-only traces land far above it);
* ``dump_ns`` mean per incremental step for each mode, and ``speedup``;
* ``restore`` — the dedup restore must reassemble the mixed-step state
  (head at the newest step, backbone at the base step) bit-exactly.

The full-size test is also the CI regression guard: it refuses a drop
below 80% of the committed reduction.  ``CI_FAST=1`` shrinks the model
and trace and skips the guard and the JSON rewrite.
"""

import json
import os

import pytest

from repro.dnn.tensor import ModelInstance, TensorSpec
from repro.dnn.zoo import build_zoo_model, head_tensor_names
from repro.harness.cluster import PaperCluster
from repro.harness.report import render_table
from repro.units import fmt_bytes, fmt_time, kib

from conftest import run_once

BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          os.pardir, "BENCH_dedup.json")

#: Full-size trace: ViT-L/32, one full dump + 4 head-only dumps.
FULL = {"model": "vit_l_32", "steps": 5}
#: CI_FAST trace: ViT-B/32, one full dump + 3 head-only dumps (the
#: shortest trace whose ideal reduction, ~4x, clears the 3x bar).
SMALL = {"model": "vit_b_32", "steps": 4}


def _run_trace(cfg, dedup):
    """One mode over the fine-tune trace; returns bytes/time/restore."""
    spec = build_zoo_model(cfg["model"])
    head = head_tensor_names(spec)
    cluster = PaperCluster(seed=230)
    holder = {"dump_ns": [], "bytes_pulled": []}

    def scenario(env):
        instance = ModelInstance.materialize(
            cfg["model"], spec.tensors, cluster.volta.gpus[0],
            model_seed=14)
        session = yield from cluster.portus_register(instance, dedup=dedup)
        for step in range(1, cfg["steps"] + 1):
            instance.update_step(step, only=None if step == 1 else head)
            before = cluster.daemon.bytes_pulled
            start = env.now
            yield from session.checkpoint(step)
            holder["dump_ns"].append(env.now - start)
            holder["bytes_pulled"].append(
                cluster.daemon.bytes_pulled - before)
        # Scramble, restore, and verify the mixed-step reassembly.
        instance.update_step(cfg["steps"] + 7)
        restored = yield from session.restore()
        assert restored == cfg["steps"]
        bad = [t.name for t in instance.tensors
               if not t.content().equals(t.expected_content(
                   restored if t.name in head else 1))]
        holder["restore_bit_exact"] = bad == []
        holder["mismatches"] = bad

    cluster.run(scenario)
    incr = holder["dump_ns"][1:]
    return {
        "bytes_moved": sum(holder["bytes_pulled"]),
        "bytes_first": holder["bytes_pulled"][0],
        "bytes_incremental": sum(holder["bytes_pulled"][1:]),
        "dump_incremental_ns": sum(incr) // len(incr),
        "restore_bit_exact": holder["restore_bit_exact"],
        "mismatches": holder["mismatches"],
    }


def _measure(cfg):
    full = _run_trace(cfg, dedup=False)
    dedup = _run_trace(cfg, dedup=True)
    return {
        "workload": dict(cfg),
        "full": full,
        "dedup": dedup,
        "reduction": round(full["bytes_moved"] / dedup["bytes_moved"], 2),
        "speedup": round(full["dump_incremental_ns"]
                         / dedup["dump_incremental_ns"], 2),
    }


def test_dedup_fig14_trace(benchmark, shared_results):
    fast = os.environ.get("CI_FAST", "0") != "0"
    cfg = SMALL if fast else FULL
    results = run_once(benchmark, "dedup_fig14", lambda: _measure(cfg),
                       shared_results)
    full, dedup = results["full"], results["dedup"]
    rows = [
        ["full", fmt_bytes(full["bytes_moved"]),
         fmt_time(full["dump_incremental_ns"])],
        ["dedup", fmt_bytes(dedup["bytes_moved"]),
         fmt_time(dedup["dump_incremental_ns"])],
    ]
    print(render_table(
        f"Dedup on the Fig. 14 trace: {cfg['model']} head fine-tune, "
        f"{cfg['steps']} dumps -> {results['reduction']}x fewer bytes, "
        f"{results['speedup']}x faster incremental dump",
        ["layout", "bytes over the wire", "incremental dump time"], rows))

    assert dedup["restore_bit_exact"], dedup["mismatches"]
    assert full["restore_bit_exact"], full["mismatches"]
    # The acceptance bar: >= 3x fewer bytes moved across the trace.
    assert results["reduction"] >= 3.0, \
        f"reduction {results['reduction']}x below the 3x bar"
    assert results["speedup"] > 1.0

    if fast:
        return  # reduced scale: structure checked, no guard, no rewrite

    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as fh:
            committed = json.load(fh)
        floor = committed["reduction"] * 0.8
        assert results["reduction"] >= floor, (
            f"dedup regressed: {results['reduction']}x < 80% of "
            f"committed {committed['reduction']}x")

    with open(BENCH_JSON, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.mark.bench_smoke
def test_smoke_dedup_moves_fewer_bytes_and_restores():
    """Tiny model, structure only: the dedup datapath moves less than a
    third of the bytes and reassembles bit-exactly."""
    specs = [TensorSpec("backbone.weight", (256, 1024)),
             TensorSpec("backbone.bias", (1024,)),
             TensorSpec("head.weight", (64, 1024)),
             TensorSpec("head.bias", (64,))]
    cluster = PaperCluster(seed=231)
    holder = {}

    def scenario(env):
        instance = ModelInstance.materialize(
            "smoke", specs, cluster.volta.gpus[0], model_seed=3)
        session = yield from cluster.portus_register(
            instance, dedup=True, chunk_bytes=256 * kib(1))
        instance.update_step(1)
        first = yield from session.checkpoint(1)
        instance.update_step(2, only=["head.weight", "head.bias"])
        second = yield from session.checkpoint(2)
        instance.update_step(9)
        restored = yield from session.restore()
        holder.update(first=first, second=second, restored=restored,
                      model=instance)

    cluster.run(scenario)
    assert holder["restored"] == 2
    assert holder["second"]["bytes_pulled"] * 3 \
        <= holder["first"]["bytes_pulled"]
    head = {"head.weight", "head.bias"}
    for tensor in holder["model"].tensors:
        want = 2 if tensor.name in head else 1
        assert tensor.content().equals(tensor.expected_content(want)), \
            tensor.name

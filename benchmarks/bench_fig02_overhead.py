"""Fig. 2: checkpointing share of total training time (motivation).

Paper: with CheckFreq-recommended frequencies (ViT every 83 iterations,
GPT every 100), a checkpoint operation weighs at least 24.9 % of total
time, growing to 41 % for GPT-22.4B.
"""

from repro.harness.experiments import fig2_overhead
from repro.harness.report import render_table

from conftest import run_once

PAPER = {"vit_l_32": 0.249, "gpt-22.4b": 0.41}


def test_fig2_checkpoint_overhead(benchmark, shared_results):
    measured = run_once(benchmark, "fig2", fig2_overhead, shared_results)
    rows = [[name, f"{fraction * 100:.1f}%",
             f"{PAPER.get(name, float('nan')) * 100:.1f}%"
             if name in PAPER else "-"]
            for name, fraction in measured.items()]
    print(render_table("Fig. 2: checkpoint share of training time",
                       ["workload", "measured", "paper"], rows))
    # Every workload spends at least ~25% of its time checkpointing...
    assert all(fraction >= 0.22 for fraction in measured.values())
    # ...growing with model scale up to ~41%.
    assert abs(measured["vit_l_32"] - PAPER["vit_l_32"]) < 0.05
    assert abs(measured["gpt-22.4b"] - PAPER["gpt-22.4b"]) < 0.05
    assert measured["gpt-22.4b"] > measured["vit_l_32"]

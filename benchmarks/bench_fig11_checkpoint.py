"""Fig. 11: checkpoint time of the seven models across storage options.

Paper: Portus is 8.49x faster than BeeGFS-PMem and 8.18x faster than
local ext4-NVMe on average, peaking at 9.23x on ResNet50 (whose many
small tensors amplify per-record and metadata overheads).
"""

import statistics

from repro.harness.experiments import fig11_fig12_times, speedups
from repro.harness.report import render_table
from repro.units import fmt_time

from conftest import run_once


def test_fig11_checkpoint_times(benchmark, shared_results):
    times = run_once(benchmark, "fig11_12", fig11_fig12_times,
                     shared_results)
    ratios = speedups(times, "checkpoint")
    rows = []
    for i, model in enumerate(times["models"]):
        rows.append([
            model,
            fmt_time(times["checkpoint"]["portus"][i]),
            fmt_time(times["checkpoint"]["beegfs_pmem"][i]),
            fmt_time(times["checkpoint"]["ext4_nvme"][i]),
            f"{ratios['vs_beegfs'][i]:.2f}x",
            f"{ratios['vs_ext4'][i]:.2f}x",
        ])
    print(render_table(
        "Fig. 11: checkpoint time (paper: avg 8.49x/8.18x, max 9.23x)",
        ["model", "portus", "beegfs-pmem", "ext4-nvme", "vs beegfs",
         "vs ext4"], rows))

    mean_beegfs = statistics.mean(ratios["vs_beegfs"])
    mean_ext4 = statistics.mean(ratios["vs_ext4"])
    # Who wins, and by roughly the paper's factor.
    assert 7.0 < mean_beegfs < 10.0
    assert 7.0 < mean_ext4 < 10.0
    assert all(r > 5 for r in ratios["vs_beegfs"])
    # The paper's maximum-speedup model is ResNet50 (small-file effect).
    best = times["models"][ratios["vs_beegfs"].index(
        max(ratios["vs_beegfs"]))]
    assert best == "resnet50"
    # BeeGFS (remote, two-sided) is slower than local ext4 to checkpoint.
    assert mean_beegfs > mean_ext4

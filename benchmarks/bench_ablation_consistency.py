"""Ablation: double-mapping vs allocate-a-fresh-checkpoint-every-time.

The conventional crash-consistency pattern writes each checkpoint into a
new file/region and swaps it in; the paper rejects it because every
checkpoint would re-allocate PMem and re-create RDMA state (§III-D2).
This ablation measures a ResNet50 checkpoint cycle both ways: the fresh
path pays allocation + AllocTable commit + MR registration (page pinning
scales with size) + QP setup on *every* checkpoint.
"""

from repro.harness.cluster import PaperCluster
from repro.harness.report import render_table
from repro.rdma.verbs import connect
from repro.units import fmt_time

from conftest import run_once

CYCLES = 5


def _run_ablation():
    cluster = PaperCluster(seed=201)
    results = {}

    def scenario(env):
        session = yield from cluster.portus_register("resnet50")
        model = session.model

        # Double mapping: regions and MRs are created once; checkpoints
        # just alternate between the two standing versions.
        start = env.now
        for step in range(1, CYCLES + 1):
            model.update_step(step)
            yield from session.checkpoint(step)
        results["double_mapping_ns"] = (env.now - start) // CYCLES

        # Allocate-fresh emulation: same pulls, plus the per-checkpoint
        # setup the paper's design avoids.
        start = env.now
        size = model.total_bytes
        for step in range(CYCLES + 1, 2 * CYCLES + 1):
            model.update_step(step)
            region = cluster.portus_pool.alloc(size, tag=f"fresh/{step}")
            mr = yield from cluster.server.nic.register_mr(region)
            _qp_a, _qp_b = yield from connect(env, cluster.server.nic,
                                              cluster.volta.nic)
            yield from session.checkpoint(step)
            cluster.server.nic.deregister_mr(mr)
            cluster.portus_pool.free(region)
        results["fresh_alloc_ns"] = (env.now - start) // CYCLES

    cluster.run(scenario)
    return results


def test_ablation_double_mapping(benchmark, shared_results):
    results = run_once(benchmark, "ablation_consistency", _run_ablation,
                       shared_results)
    overhead = (results["fresh_alloc_ns"] / results["double_mapping_ns"]
                - 1.0)
    print(render_table(
        "Ablation: crash-consistency scheme, ResNet50 checkpoint cycle",
        ["scheme", "per-checkpoint", "overhead"],
        [["double mapping (Portus)",
          fmt_time(results["double_mapping_ns"]), "-"],
         ["allocate fresh + re-register",
          fmt_time(results["fresh_alloc_ns"]),
          f"+{overhead * 100:.0f}%"]]))
    # Re-pinning ~100 MiB per checkpoint costs real time: the fresh path
    # must be substantially slower.
    assert results["fresh_alloc_ns"] > 1.5 * results["double_mapping_ns"]

"""Fig. 9: training timeline under four checkpointing policies.

Paper (qualitative): ordinary PyTorch sync is worst (full serialize +
persist stall every checkpoint); CheckFreq hides the persist but stalls
for snapshots; Portus-sync stalls only for the fast pull; Portus-async
has near-zero overhead.
"""

from repro.harness.experiments import fig9_timeline
from repro.harness.report import render_table
from repro.units import fmt_time

from conftest import run_once


def test_fig9_policy_timeline(benchmark, shared_results):
    result = run_once(benchmark, "fig9", fig9_timeline, shared_results)
    systems = ["pytorch_sync", "checkfreq", "portus_sync", "portus_async"]
    compute = result["compute_ns"]
    rows = []
    for system in systems:
        entry = result[system]
        overhead = (entry["total_ns"] - compute) / compute
        rows.append([system, fmt_time(entry["total_ns"]),
                     fmt_time(entry["stall_ns"]),
                     f"{overhead * 100:.1f}%"])
    print(render_table(
        f"Fig. 9: {result['model']} x{result['iterations']} iterations, "
        "checkpoint every iteration",
        ["policy", "total", "ckpt stall", "overhead"], rows))
    totals = [result[system]["total_ns"] for system in systems]
    # Strict ordering: each policy beats the one before it.
    assert totals == sorted(totals, reverse=True)
    # Portus-async is within 2% of pure compute time.
    assert result["portus_async"]["total_ns"] < compute * 1.02
    # Ordinary sync pays >50% overhead at this frequency.
    assert result["pytorch_sync"]["total_ns"] > compute * 1.5

#!/usr/bin/env bash
# Seconds-long smoke pass over the benchmark suite: every benchmark
# datapath exercised with the tiniest model/config for one iteration
# (benchmarks/bench_smoke.py plus every `bench_smoke`-marked test,
# e.g. the sim hot-path scheduler-agreement check in
# benchmarks/bench_sim_hotpath.py and the dedup bytes-moved check in
# benchmarks/bench_dedup.py).  Use before committing datapath
# changes; the full suite is `pytest benchmarks/`.
set -euo pipefail
cd "$(dirname "$0")/.."
PYTHONPATH=src exec python -m pytest benchmarks -m bench_smoke -q "$@"

#!/usr/bin/env bash
# The single CI gate.  Runs, in order:
#
#   1. tier-1: the full unit/integration suite (tests/), including the
#      chaos sweeps at their default 200 schedules and the crash-point
#      sweep at every boundary; then the self-healing operator and
#      fleet chaos smokes and `portusctl fsck` / `health` smokes —
#      single-daemon and `--daemons 3` fleet rollup — the demo pools
#      must verify structurally clean and classify healthy;
#   2. bench smoke: every benchmark datapath, tiniest config, one
#      iteration (scripts/bench_smoke.sh); then the sim hot-path bench,
#      which guards against a >20% speedup regression vs the committed
#      BENCH_sim.json, the dedup bench, which guards the Fig. 14
#      trace's bytes-moved reduction vs the committed BENCH_dedup.json,
#      the fleet bench, which guards the 96-tenant open loop's p99
#      improvement vs the committed BENCH_fleet.json, and the group
#      bench, which guards the parallel-group dump speedup vs the
#      committed BENCH_group.json
#      (CI_FAST runs all four at reduced scale, no guard);
#   3. trace smoke: a traced benchmark run must emit loadable Chrome
#      trace_event JSON + a metrics snapshot at zero simulated-time
#      cost (the observability layer's contract);
#   4. determinism: identical chaos schedules twice, traces diffed
#      (scripts/check_determinism.sh).
#
# Usage: scripts/ci.sh            # the whole gate
#        CI_FAST=1 scripts/ci.sh  # trimmed chaos sweeps for quick loops
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${CI_FAST:-0}" != "0" ]]; then
    export PORTUS_CHAOS_EXAMPLES="${PORTUS_CHAOS_EXAMPLES:-20}"
    export PORTUS_OPS_EXAMPLES="${PORTUS_OPS_EXAMPLES:-10}"
    export PORTUS_TORN_EXAMPLES="${PORTUS_TORN_EXAMPLES:-20}"
    export PORTUS_CRASHPOINT_STRIDE="${PORTUS_CRASHPOINT_STRIDE:-5}"
    export PORTUS_FLEET_EXAMPLES="${PORTUS_FLEET_EXAMPLES:-8}"
fi

step() { printf '\n=== %s ===\n' "$*"; }

step "tier-1 test suite"
PYTHONPATH=src python -m pytest -x -q

step "operator chaos smoke (self-healing, zero manual recovery)"
PYTHONPATH=src PORTUS_OPS_EXAMPLES="${PORTUS_OPS_EXAMPLES:-20}" \
    python -m pytest tests/faults/test_operator_chaos.py -x -q

step "fleet chaos smoke (N shards, shard-targeted remediation)"
PYTHONPATH=src PORTUS_FLEET_EXAMPLES="${PORTUS_FLEET_EXAMPLES:-12}" \
    python -m pytest tests/faults/test_fleet_chaos.py -x -q

step "portusctl fsck smoke (demo pool must verify clean)"
PYTHONPATH=src python -m repro.core.portusctl fsck

step "portusctl health + fsck --json smoke"
PYTHONPATH=src python -m repro.core.portusctl health
PYTHONPATH=src python -m repro.core.portusctl fsck --json | python -c '
import json, sys
report = json.load(sys.stdin)
assert report["clean"] is True, report
print("OK: fsck --json clean, checked %s" % report["checked"])
'

step "portusctl fleet smoke (per-shard + rollup, 3 daemons)"
PYTHONPATH=src python -m repro.core.portusctl fsck --daemons 3 --json | \
    python -c '
import json, sys
report = json.load(sys.stdin)
assert report["clean"] is True, report
assert sorted(report["shards"]) == ["server", "server1", "server2"], report
print("OK: fleet fsck clean on %d shards" % len(report["shards"]))
'
PYTHONPATH=src python -m repro.core.portusctl health --daemons 3 >/dev/null
echo "OK: fleet health rollup healthy"

step "benchmark smoke"
scripts/bench_smoke.sh

step "sim hot-path bench (regression guard vs BENCH_sim.json)"
PYTHONPATH=src python -m pytest \
    "benchmarks/bench_sim_hotpath.py::test_sim_hotpath_fleet" -q

step "dedup bench (bytes-moved regression guard vs BENCH_dedup.json)"
PYTHONPATH=src python -m pytest \
    "benchmarks/bench_dedup.py::test_dedup_fig14_trace" -q

step "fleet bench (p99-improvement regression guard vs BENCH_fleet.json)"
PYTHONPATH=src python -m pytest \
    "benchmarks/bench_fleet.py::test_fleet_open_loop" -q

step "group bench (dump-speedup regression guard vs BENCH_group.json)"
PYTHONPATH=src python -m pytest \
    "benchmarks/bench_group.py::test_group_dump_speedup" -q

step "traced-run smoke (Chrome trace + metrics, zero-cost)"
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
PYTHONPATH=src python -m pytest \
    "benchmarks/bench_smoke.py::test_smoke_traced_run_emits_valid_chrome_trace" \
    "benchmarks/bench_fig13_bert_breakdown.py::test_fig13_portus_traced_breakdown" \
    --trace-out "$TRACE_DIR" -q
python - "$TRACE_DIR/fig13_portus.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as handle:
    trace = json.load(handle)
events = trace["traceEvents"]
assert events, "empty trace"
assert all("ph" in e and "name" in e for e in events), "malformed event"
print(f"OK: {sys.argv[1]} loads as Chrome trace JSON "
      f"({len(events)} events)")
EOF

step "chaos determinism"
scripts/check_determinism.sh "${PORTUS_CHAOS_EXAMPLES:-40}"

printf '\nCI gate passed.\n'

#!/usr/bin/env bash
# Determinism check for the chaos suite: run the same randomized fault
# schedules twice with the same seed and diff the per-schedule traces.
# Any divergence (different fault plan, different acked set, different
# restored step) means a hidden source of nondeterminism crept into the
# simulator or the fault injector.
#
# Usage: scripts/check_determinism.sh [examples] [seed]
set -euo pipefail

cd "$(dirname "$0")/.."

EXAMPLES="${1:-${PORTUS_CHAOS_EXAMPLES:-40}}"
SEED="${2:-${PORTUS_CHAOS_SEED:-0}}"
OPS_EXAMPLES="${PORTUS_OPS_EXAMPLES:-$EXAMPLES}"
# The fleet sweep runs 3-shard schedules end to end (~1.5s each), so
# its default is smaller than the single-daemon sweeps'.
FLEET_EXAMPLES="${PORTUS_FLEET_EXAMPLES:-8}"
# The group crash sweep replays a full group lifecycle per boundary;
# tier-1 covers every boundary, so the determinism pass subsamples.
GROUP_STRIDE="${PORTUS_CRASHPOINT_STRIDE:-7}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

run() {
    local trace="$1"
    PYTHONPATH=src \
    PORTUS_CHAOS_EXAMPLES="$EXAMPLES" \
    PORTUS_OPS_EXAMPLES="$OPS_EXAMPLES" \
    PORTUS_FLEET_EXAMPLES="$FLEET_EXAMPLES" \
    PORTUS_CRASHPOINT_STRIDE="$GROUP_STRIDE" \
    PORTUS_CHAOS_SEED="$SEED" \
    CHAOS_TRACE="$trace" \
        python -m pytest tests/faults/test_chaos_properties.py \
            tests/faults/test_operator_chaos.py \
            tests/faults/test_fleet_chaos.py \
            tests/faults/test_group_crash.py -q -x \
            -p no:cacheprovider >"$trace.log" 2>&1 || {
        echo "chaos suite failed; last lines of $trace.log:" >&2
        tail -20 "$trace.log" >&2
        exit 1
    }
}

echo "chaos determinism: $EXAMPLES schedules, seed $SEED, two runs..."
run "$WORKDIR/trace-a"
run "$WORKDIR/trace-b"

if ! diff -u "$WORKDIR/trace-a" "$WORKDIR/trace-b"; then
    echo "FAIL: chaos traces diverged between identical runs" >&2
    exit 1
fi
echo "OK: $(wc -l <"$WORKDIR/trace-a") trace lines, bit-identical."
